#include "compress/huffman.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <queue>

#include "util/error.hpp"

namespace amrvis::compress {

namespace {

constexpr int kMaxCodeLen = 32;

struct SymbolLength {
  std::uint32_t symbol;
  std::uint8_t length;
};

/// Package-merge would be the textbook length-limited algorithm; symbol
/// counts here are <= 2^16 so a plain Huffman tree never exceeds ~44 bits
/// only in adversarial cases. We build the tree, and if a length exceeds
/// the cap we flatten the worst tail (heuristic depth clamp + Kraft fix).
std::vector<SymbolLength> build_code_lengths(
    const std::map<std::uint32_t, std::uint64_t>& freq) {
  struct Node {
    std::uint64_t weight;
    int left = -1, right = -1;
    std::uint32_t symbol = 0;
  };
  std::vector<Node> nodes;
  using HeapItem = std::pair<std::uint64_t, int>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (const auto& [sym, count] : freq) {
    nodes.push_back({count, -1, -1, sym});
    heap.emplace(count, static_cast<int>(nodes.size() - 1));
  }
  AMRVIS_REQUIRE(!nodes.empty());
  if (nodes.size() == 1)
    return {{nodes[0].symbol, 1}};
  while (heap.size() > 1) {
    auto [wa, a] = heap.top();
    heap.pop();
    auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b, 0});
    heap.emplace(wa + wb, static_cast<int>(nodes.size() - 1));
  }

  std::vector<SymbolLength> out;
  // Iterative DFS assigning depths.
  std::vector<std::pair<int, int>> stack{{static_cast<int>(nodes.size()) - 1,
                                          0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    if (n.left < 0) {
      out.push_back({n.symbol, static_cast<std::uint8_t>(
                                   std::min(depth, kMaxCodeLen))});
    } else {
      stack.emplace_back(n.left, depth + 1);
      stack.emplace_back(n.right, depth + 1);
    }
  }

  // Kraft repair after clamping: while oversubscribed, lengthen the
  // shortest clamped-adjacent codes. (Clamping is extremely rare with
  // quantizer outputs; correctness is what matters.)
  auto kraft = [&out] {
    long double k = 0;
    for (const auto& sl : out) k += std::pow(2.0L, -int(sl.length));
    return k;
  };
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.length != b.length ? a.length < b.length : a.symbol < b.symbol;
  });
  while (kraft() > 1.0L + 1e-18L) {
    // Increase the length of the longest code that is still < cap.
    bool changed = false;
    for (auto it = out.rbegin(); it != out.rend(); ++it) {
      if (it->length < kMaxCodeLen) {
        ++it->length;
        changed = true;
        break;
      }
    }
    AMRVIS_REQUIRE_MSG(changed, "huffman: cannot satisfy Kraft inequality");
  }
  return out;
}

struct CanonicalCode {
  // Sorted by (length, symbol); codes assigned canonically.
  std::vector<SymbolLength> lengths;
  std::vector<std::uint64_t> codes;  // aligned with lengths
};

CanonicalCode canonicalize(std::vector<SymbolLength> lengths) {
  std::sort(lengths.begin(), lengths.end(),
            [](const SymbolLength& a, const SymbolLength& b) {
              return a.length != b.length ? a.length < b.length
                                          : a.symbol < b.symbol;
            });
  CanonicalCode cc;
  cc.lengths = std::move(lengths);
  cc.codes.resize(cc.lengths.size());
  std::uint64_t code = 0;
  int prev_len = 0;
  for (std::size_t i = 0; i < cc.lengths.size(); ++i) {
    const int len = cc.lengths[i].length;
    code <<= (len - prev_len);
    cc.codes[i] = code;
    ++code;
    prev_len = len;
  }
  return cc;
}

}  // namespace

Bytes huffman_encode(std::span<const std::uint32_t> symbols) {
  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint64_t>(symbols.size());
  if (symbols.empty()) return blob;

  std::map<std::uint32_t, std::uint64_t> freq;
  for (std::uint32_t s : symbols) ++freq[s];

  const CanonicalCode cc = canonicalize(build_code_lengths(freq));

  // Serialize the table: entry count, then delta-encoded symbols (sorted
  // by symbol) with their lengths.
  std::vector<SymbolLength> by_symbol = cc.lengths;
  std::sort(by_symbol.begin(), by_symbol.end(),
            [](const SymbolLength& a, const SymbolLength& b) {
              return a.symbol < b.symbol;
            });
  w.put<std::uint32_t>(static_cast<std::uint32_t>(by_symbol.size()));
  std::uint32_t prev = 0;
  for (const auto& sl : by_symbol) {
    std::uint32_t delta = sl.symbol - prev;
    prev = sl.symbol;
    // Varint delta.
    while (delta >= 0x80) {
      w.put<std::uint8_t>(static_cast<std::uint8_t>(delta) | 0x80);
      delta >>= 7;
    }
    w.put<std::uint8_t>(static_cast<std::uint8_t>(delta));
    w.put<std::uint8_t>(sl.length);
  }

  // Build encode lookup (symbol -> code/length).
  std::map<std::uint32_t, std::pair<std::uint64_t, int>> enc;
  for (std::size_t i = 0; i < cc.lengths.size(); ++i)
    enc[cc.lengths[i].symbol] = {cc.codes[i], cc.lengths[i].length};

  BitWriter bits;
  for (std::uint32_t s : symbols) {
    const auto& [code, len] = enc.at(s);
    bits.put_bits(code, len);
  }
  w.put_blob(bits.bytes());
  return blob;
}

std::vector<std::uint32_t> huffman_decode(
    std::span<const std::uint8_t> blob) {
  ByteReader r(blob);
  const auto count = r.get<std::uint64_t>();
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(count));
  if (count == 0) return out;

  const auto table_size = r.get<std::uint32_t>();
  std::vector<SymbolLength> by_symbol;
  by_symbol.reserve(table_size);
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < table_size; ++i) {
    std::uint32_t delta = 0;
    int shift = 0;
    while (true) {
      const auto byte = r.get<std::uint8_t>();
      delta |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) break;
      shift += 7;
    }
    prev += delta;
    const auto len = r.get<std::uint8_t>();
    by_symbol.push_back({prev, len});
    // Next delta is relative to this symbol.
  }

  const CanonicalCode cc = canonicalize(std::move(by_symbol));

  // Canonical decoding: for each length, the first code and the index of
  // its first symbol.
  std::array<std::uint64_t, kMaxCodeLen + 2> first_code{};
  std::array<std::uint64_t, kMaxCodeLen + 2> first_index{};
  std::array<std::uint64_t, kMaxCodeLen + 2> count_at_len{};
  for (const auto& sl : cc.lengths) ++count_at_len[sl.length];
  {
    std::uint64_t code = 0, index = 0;
    for (int len = 1; len <= kMaxCodeLen; ++len) {
      first_code[len] = code;
      first_index[len] = index;
      code = (code + count_at_len[len]) << 1;
      index += count_at_len[len];
    }
  }

  const auto payload = r.get_blob();
  BitReader bits(payload);
  for (std::uint64_t n = 0; n < count; ++n) {
    std::uint64_t code = 0;
    int len = 0;
    while (true) {
      code = (code << 1) | bits.get_bit();
      ++len;
      AMRVIS_REQUIRE_MSG(len <= kMaxCodeLen, "huffman: corrupt stream");
      if (count_at_len[len] > 0 &&
          code < first_code[len] + count_at_len[len] &&
          code >= first_code[len]) {
        const std::uint64_t idx = first_index[len] + (code - first_code[len]);
        out.push_back(cc.lengths[static_cast<std::size_t>(idx)].symbol);
        break;
      }
    }
  }
  return out;
}

}  // namespace amrvis::compress
