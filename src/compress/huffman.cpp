#include "compress/huffman.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <queue>
#include <utility>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace amrvis::compress {

namespace {

constexpr int kMaxCodeLen = 32;

/// First-level decode table width: codes of length <= kLutBits resolve in
/// a single table lookup; longer codes (rare in quantizer streams) fall
/// back to the canonical per-length scan.
constexpr int kLutBits = 11;

struct SymbolLength {
  std::uint32_t symbol;
  std::uint8_t length;
};

/// Alphabet bound below which the histogram and encode table use dense
/// flat arrays indexed by symbol (capped so a hostile alphabet cannot
/// demand gigabytes); shared so both stages always pick the same path.
std::size_t dense_limit(std::size_t num_symbols) {
  return std::max<std::size_t>(
      std::size_t{1} << 16,
      std::min<std::size_t>(4 * num_symbols, std::size_t{1} << 22));
}

/// Histogram as (symbol, count) pairs sorted by symbol — the iteration
/// order the tree build depends on, matching what a std::map would yield.
using Freq = std::vector<std::pair<std::uint32_t, std::uint64_t>>;

/// Quantizer codes are small contiguous integers (< 2*radius = 65536 by
/// default), so the histogram is a dense flat array indexed by symbol.
/// Sparse or huge alphabets (symbols far beyond the input size) fall back
/// to sort + run-length counting.
Freq build_histogram(std::span<const std::uint32_t> symbols) {
  std::uint32_t max_sym = 0;
  for (const std::uint32_t s : symbols) max_sym = std::max(max_sym, s);

  Freq freq;
  if (max_sym < dense_limit(symbols.size())) {
    std::vector<std::uint64_t> hist(static_cast<std::size_t>(max_sym) + 1, 0);
    for (const std::uint32_t s : symbols) ++hist[s];
    for (std::uint32_t sym = 0; sym <= max_sym; ++sym)
      if (hist[sym] != 0) freq.emplace_back(sym, hist[sym]);
  } else {
    std::vector<std::uint32_t> sorted(symbols.begin(), symbols.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size();) {
      std::size_t j = i;
      while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
      freq.emplace_back(sorted[i], j - i);
      i = j;
    }
  }
  return freq;
}

/// Package-merge would be the textbook length-limited algorithm; symbol
/// counts here are <= 2^16 so a plain Huffman tree never exceeds ~44 bits
/// only in adversarial cases. We build the tree, and if a length exceeds
/// the cap we flatten the worst tail (heuristic depth clamp + Kraft fix).
std::vector<SymbolLength> build_code_lengths(const Freq& freq) {
  struct Node {
    std::uint64_t weight;
    int left = -1, right = -1;
    std::uint32_t symbol = 0;
  };
  std::vector<Node> nodes;
  using HeapItem = std::pair<std::uint64_t, int>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (const auto& [sym, count] : freq) {
    nodes.push_back({count, -1, -1, sym});
    heap.emplace(count, static_cast<int>(nodes.size() - 1));
  }
  AMRVIS_REQUIRE(!nodes.empty());
  if (nodes.size() == 1)
    return {{nodes[0].symbol, 1}};
  while (heap.size() > 1) {
    auto [wa, a] = heap.top();
    heap.pop();
    auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b, 0});
    heap.emplace(wa + wb, static_cast<int>(nodes.size() - 1));
  }

  std::vector<SymbolLength> out;
  // Iterative DFS assigning depths.
  std::vector<std::pair<int, int>> stack{{static_cast<int>(nodes.size()) - 1,
                                          0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    if (n.left < 0) {
      out.push_back({n.symbol, static_cast<std::uint8_t>(
                                   std::min(depth, kMaxCodeLen))});
    } else {
      stack.emplace_back(n.left, depth + 1);
      stack.emplace_back(n.right, depth + 1);
    }
  }

  // Kraft repair after clamping: while oversubscribed, lengthen the
  // shortest clamped-adjacent codes. (Clamping is extremely rare with
  // quantizer outputs; correctness is what matters.)
  auto kraft = [&out] {
    long double k = 0;
    for (const auto& sl : out) k += std::pow(2.0L, -int(sl.length));
    return k;
  };
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.length != b.length ? a.length < b.length : a.symbol < b.symbol;
  });
  while (kraft() > 1.0L + 1e-18L) {
    // Increase the length of the longest code that is still < cap.
    bool changed = false;
    for (auto it = out.rbegin(); it != out.rend(); ++it) {
      if (it->length < kMaxCodeLen) {
        ++it->length;
        changed = true;
        break;
      }
    }
    AMRVIS_REQUIRE_MSG(changed, "huffman: cannot satisfy Kraft inequality");
  }
  return out;
}

struct CanonicalCode {
  // Sorted by (length, symbol); codes assigned canonically.
  std::vector<SymbolLength> lengths;
  std::vector<std::uint64_t> codes;  // aligned with lengths
};

CanonicalCode canonicalize(std::vector<SymbolLength> lengths) {
  std::sort(lengths.begin(), lengths.end(),
            [](const SymbolLength& a, const SymbolLength& b) {
              return a.length != b.length ? a.length < b.length
                                          : a.symbol < b.symbol;
            });
  CanonicalCode cc;
  cc.lengths = std::move(lengths);
  cc.codes.resize(cc.lengths.size());
  std::uint64_t code = 0;
  int prev_len = 0;
  for (std::size_t i = 0; i < cc.lengths.size(); ++i) {
    const int len = cc.lengths[i].length;
    code <<= (len - prev_len);
    cc.codes[i] = code;
    ++code;
    prev_len = len;
  }
  return cc;
}

/// Buffered MSB-first bit reader for the decode hot loop. Keeps the next
/// >= 57 bits left-aligned in a 64-bit window so short codes resolve with
/// one table lookup; bytes past the end of the payload read as zero and
/// the caller checks consumed_bits() against the real payload size.
class FastBits {
 public:
  explicit FastBits(std::span<const std::uint8_t> bytes)
      : data_(bytes.data()), size_(bytes.size()) {}

  void refill() {
    while (nbits_ <= 56) {
      const std::uint64_t b = next_ < size_ ? data_[next_] : 0;
      ++next_;
      buf_ |= b << (56 - nbits_);
      nbits_ += 8;
    }
  }

  /// Next `n` bits (1 <= n <= 32), MSB-first; refill() first.
  [[nodiscard]] std::uint64_t peek(int n) const { return buf_ >> (64 - n); }

  void consume(int n) {
    buf_ <<= n;
    nbits_ -= n;
  }

  /// Bits consumed so far, counting any synthetic zero padding.
  [[nodiscard]] std::uint64_t consumed_bits() const {
    return static_cast<std::uint64_t>(next_) * 8 -
           static_cast<std::uint64_t>(nbits_);
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t next_ = 0;  // next byte index to feed (may pass size_)
  std::uint64_t buf_ = 0;
  int nbits_ = 0;
};

}  // namespace

Bytes huffman_encode(std::span<const std::uint32_t> symbols) {
  OBS_SPAN("stage.huffman.encode",
           {"symbols", static_cast<std::int64_t>(symbols.size())});
  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint64_t>(symbols.size());
  if (symbols.empty()) return blob;

  const Freq freq = build_histogram(symbols);
  const CanonicalCode cc = canonicalize(build_code_lengths(freq));

  // Serialize the table: entry count, then delta-encoded symbols (sorted
  // by symbol) with their lengths.
  std::vector<SymbolLength> by_symbol = cc.lengths;
  std::sort(by_symbol.begin(), by_symbol.end(),
            [](const SymbolLength& a, const SymbolLength& b) {
              return a.symbol < b.symbol;
            });
  w.put<std::uint32_t>(static_cast<std::uint32_t>(by_symbol.size()));
  std::uint32_t prev = 0;
  for (const auto& sl : by_symbol) {
    std::uint32_t delta = sl.symbol - prev;
    prev = sl.symbol;
    // Varint delta.
    while (delta >= 0x80) {
      w.put<std::uint8_t>(static_cast<std::uint8_t>(delta) | 0x80);
      delta >>= 7;
    }
    w.put<std::uint8_t>(static_cast<std::uint8_t>(delta));
    w.put<std::uint8_t>(sl.length);
  }

  // Encode lookup (symbol -> code/length): a dense flat table over the
  // alphabet range when it is compact (the quantizer case), else a
  // sorted vector searched per symbol. Bits pack MSB-first through a
  // 64-bit accumulator (nacc < 8 after each flush, so any code length
  // up to kMaxCodeLen fits), emitting whole bytes — byte-identical to a
  // per-bit writer with zero padding in the final partial byte.
  const std::uint32_t max_sym = by_symbol.back().symbol;
  Bytes payload;
  payload.reserve(symbols.size() / 2);
  std::uint64_t acc = 0;  // pending bits, left-aligned
  int nacc = 0;
  const auto put_code = [&](std::uint64_t code, int len) {
    acc |= code << (64 - nacc - len);
    nacc += len;
    while (nacc >= 8) {
      payload.push_back(static_cast<std::uint8_t>(acc >> 56));
      acc <<= 8;
      nacc -= 8;
    }
  };
  if (max_sym < dense_limit(symbols.size())) {
    std::vector<std::uint64_t> code_of(static_cast<std::size_t>(max_sym) + 1);
    std::vector<std::uint8_t> len_of(static_cast<std::size_t>(max_sym) + 1, 0);
    for (std::size_t i = 0; i < cc.lengths.size(); ++i) {
      code_of[cc.lengths[i].symbol] = cc.codes[i];
      len_of[cc.lengths[i].symbol] = cc.lengths[i].length;
    }
    for (const std::uint32_t s : symbols) put_code(code_of[s], len_of[s]);
  } else {
    struct Entry {
      std::uint32_t symbol;
      std::uint8_t length;
      std::uint64_t code;
    };
    std::vector<Entry> enc;
    enc.reserve(cc.lengths.size());
    for (std::size_t i = 0; i < cc.lengths.size(); ++i)
      enc.push_back({cc.lengths[i].symbol, cc.lengths[i].length, cc.codes[i]});
    std::sort(enc.begin(), enc.end(),
              [](const Entry& a, const Entry& b) { return a.symbol < b.symbol; });
    for (const std::uint32_t s : symbols) {
      const auto it = std::lower_bound(
          enc.begin(), enc.end(), s,
          [](const Entry& e, std::uint32_t sym) { return e.symbol < sym; });
      put_code(it->code, it->length);
    }
  }
  if (nacc > 0) payload.push_back(static_cast<std::uint8_t>(acc >> 56));
  w.put_blob(payload);
  return blob;
}

std::vector<std::uint32_t> huffman_decode(
    std::span<const std::uint8_t> blob) {
  OBS_SPAN("stage.huffman.decode",
           {"bytes", static_cast<std::int64_t>(blob.size())});
  ByteReader r(blob);
  const auto count = r.get<std::uint64_t>();
  // count is attacker-controlled on a corrupt blob; every decoded symbol
  // consumes at least one payload bit, so the whole blob bounds it and an
  // unbounded reserve cannot OOM.
  AMRVIS_CHECK(ErrorCode::kCorruptPayload,
               count <= static_cast<std::uint64_t>(blob.size()) * 8,
               "huffman: symbol count exceeds payload capacity");
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(count));
  if (count == 0) return out;

  const auto table_size = r.get<std::uint32_t>();
  // Each table entry consumes at least two stream bytes (delta + length).
  AMRVIS_CHECK(ErrorCode::kCorruptPayload,
               table_size <= r.remaining(),
               "huffman: corrupt table size");
  std::vector<SymbolLength> by_symbol;
  by_symbol.reserve(table_size);
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < table_size; ++i) {
    std::uint32_t delta = 0;
    int shift = 0;
    while (true) {
      // A corrupt run of continuation bytes would push the shift past the
      // type width (undefined behavior); 5 bytes cover any 32-bit delta.
      AMRVIS_CHECK(ErrorCode::kCorruptPayload, shift < 32,
                   "huffman: corrupt symbol delta");
      const auto byte = r.get<std::uint8_t>();
      delta |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) break;
      shift += 7;
    }
    prev += delta;
    const auto len = r.get<std::uint8_t>();
    // Validated at parse time: an unchecked length would index the
    // fixed-size per-length arrays below out of bounds.
    AMRVIS_CHECK(ErrorCode::kCorruptPayload, len >= 1 && len <= kMaxCodeLen,
                 "huffman: corrupt code length");
    by_symbol.push_back({prev, len});
    // Next delta is relative to this symbol.
  }

  const CanonicalCode cc = canonicalize(std::move(by_symbol));

  // Canonical decoding: for each length, the first code and the index of
  // its first symbol.
  std::array<std::uint64_t, kMaxCodeLen + 2> first_code{};
  std::array<std::uint64_t, kMaxCodeLen + 2> first_index{};
  std::array<std::uint64_t, kMaxCodeLen + 2> count_at_len{};
  for (const auto& sl : cc.lengths) ++count_at_len[sl.length];
  {
    std::uint64_t code = 0, index = 0;
    for (int len = 1; len <= kMaxCodeLen; ++len) {
      first_code[len] = code;
      first_index[len] = index;
      code = (code + count_at_len[len]) << 1;
      index += count_at_len[len];
    }
  }

  // First-level flat table: the next kLutBits bits index directly to the
  // decoded symbol for every code of length <= kLutBits. Slots covered
  // only by longer codes keep length 0 and take the fallback scan.
  struct LutEntry {
    std::uint32_t symbol = 0;
    std::uint8_t length = 0;
  };
  std::vector<LutEntry> lut(std::size_t{1} << kLutBits);
  for (std::size_t i = 0; i < cc.lengths.size(); ++i) {
    const int len = cc.lengths[i].length;
    if (len > kLutBits) break;  // sorted by length: all following are longer
    const std::uint64_t code = cc.codes[i];
    // A corrupt (Kraft-oversubscribed) table can assign codes that do not
    // fit in `len` bits; skip those so the fill below stays in bounds —
    // the affected windows then resolve through the fallback scan, which
    // rejects them exactly like the seed decoder did.
    if (code >= (std::uint64_t{1} << len)) continue;
    const std::size_t base = static_cast<std::size_t>(code)
                             << (kLutBits - len);
    const std::size_t span = std::size_t{1} << (kLutBits - len);
    for (std::size_t s = 0; s < span; ++s)
      lut[base + s] = {cc.lengths[i].symbol, static_cast<std::uint8_t>(len)};
  }

  const auto payload = r.get_blob();
  const std::uint64_t total_bits =
      static_cast<std::uint64_t>(payload.size()) * 8;
  FastBits bits(payload);
  for (std::uint64_t n = 0; n < count; ++n) {
    bits.refill();
    const LutEntry e = lut[bits.peek(kLutBits)];
    std::uint32_t symbol;
    if (e.length != 0) {
      symbol = e.symbol;
      bits.consume(e.length);
    } else {
      // Long-code fallback: widen the window and scan the remaining
      // lengths with the canonical first-code test (same acceptance
      // condition as the seed bit-by-bit decoder).
      const std::uint64_t window = bits.peek(kMaxCodeLen);
      int len = kLutBits + 1;
      std::uint64_t code = 0;
      for (; len <= kMaxCodeLen; ++len) {
        code = window >> (kMaxCodeLen - len);
        if (count_at_len[len] > 0 && code >= first_code[len] &&
            code < first_code[len] + count_at_len[len])
          break;
      }
      AMRVIS_CHECK(ErrorCode::kCorruptPayload, len <= kMaxCodeLen,
                   "huffman: corrupt stream");
      const std::uint64_t idx = first_index[len] + (code - first_code[len]);
      symbol = cc.lengths[static_cast<std::size_t>(idx)].symbol;
      bits.consume(len);
    }
    AMRVIS_CHECK(ErrorCode::kCorruptPayload,
                 bits.consumed_bits() <= total_bits,
                 "huffman: corrupt stream (out of bits)");
    out.push_back(symbol);
  }
  return out;
}

}  // namespace amrvis::compress
