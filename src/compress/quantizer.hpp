#pragma once
// Error-controlled linear quantizer — the quantization stage shared by all
// prediction-based codecs (paper §2.1 stage 2).
//
// A prediction residual (value - predicted) is mapped to an integer code
// with bin width 2*eb, guaranteeing |value - reconstructed| <= eb for
// quantizable points. Points whose residual falls outside the code range
// are "unpredictable": they get the reserved code 0 and their value is
// stored (quantized to the eb grid) in a side stream, so the bound holds
// for every point.

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace amrvis::compress {

class LinearQuantizer {
 public:
  /// `radius` is the half-width of the code range: codes are in
  /// [1, 2*radius - 1] with `radius` meaning zero residual; 0 is the
  /// outlier escape. 32768 reproduces SZ's default 16-bit code space.
  explicit LinearQuantizer(double abs_eb, std::int32_t radius = 32768)
      : eb_(abs_eb), radius_(radius) {
    AMRVIS_REQUIRE_MSG(abs_eb > 0.0, "error bound must be positive");
    AMRVIS_REQUIRE(radius >= 2);
  }

  [[nodiscard]] double error_bound() const { return eb_; }
  [[nodiscard]] std::int32_t radius() const { return radius_; }
  [[nodiscard]] std::uint32_t num_codes() const {
    return static_cast<std::uint32_t>(2 * radius_);
  }

  /// Quantize `value` against `predicted`. Returns the code and sets
  /// `reconstructed` to the decoder-visible value. Outliers (code 0)
  /// append to `outliers`.
  std::uint32_t encode(double value, double predicted, double& reconstructed,
                       std::vector<double>& outliers) const {
    const double diff = value - predicted;
    // Round residual to the nearest multiple of 2*eb.
    const double scaled = diff / (2.0 * eb_);
    if (scaled > static_cast<double>(radius_ - 1) ||
        scaled < -static_cast<double>(radius_ - 1)) {
      reconstructed = quantize_outlier(value, outliers);
      return 0;
    }
    // Branchless round-half-away-from-zero: identical result to the
    // sign-branch form for every non-NaN input (incl. +/-0), but immune
    // to the ~random residual-sign misprediction in the hot loop.
    const auto q = static_cast<std::int32_t>(
        scaled + std::copysign(0.5, scaled));
    reconstructed = predicted + 2.0 * eb_ * static_cast<double>(q);
    if (!(std::abs(reconstructed - value) <= eb_)) {
      // Floating-point cancellation can break the bound for extreme
      // predictions; fall back to the outlier path which re-centres on the
      // value itself.
      reconstructed = quantize_outlier(value, outliers);
      return 0;
    }
    return static_cast<std::uint32_t>(q + radius_);
  }

  /// Decoder counterpart: reproduce `reconstructed` from the code stream.
  /// The outlier side stream is bounds-checked here: a corrupt blob with
  /// more escape codes than stored outliers must throw, not read past the
  /// stream (the check only runs on the rare code-0 path).
  double decode(std::uint32_t code, double predicted,
                std::span<const double> outliers,
                std::size_t& outlier_pos) const {
    if (code == 0) {
      AMRVIS_CHECK(ErrorCode::kCorruptPayload,
                   outlier_pos < outliers.size(),
                   "quantizer: truncated outlier stream");
      return outliers[outlier_pos++];
    }
    const auto q =
        static_cast<std::int32_t>(code) - radius_;
    return predicted + 2.0 * eb_ * static_cast<double>(q);
  }

 private:
  /// Outliers are stored snapped to the eb grid so they stay within bound
  /// while remaining identical on both sides: the snapped value is both
  /// pushed to the side stream and returned as the encoder-visible
  /// reconstruction, so the decoder (which reads the stream verbatim)
  /// reproduces it bit-exactly. Snapping to multiples of 2*eb keeps
  /// |value - stored| <= eb while zeroing the low mantissa bits, which
  /// makes the side stream itself more compressible downstream.
  double quantize_outlier(double value, std::vector<double>& outliers) const {
    const double step = 2.0 * eb_;
    const double snapped = step * std::round(value / step);
    // Guard against overflow / cancellation for extreme value/eb ratios:
    // if snapping cannot honor the bound, store the raw value (error 0).
    const double stored =
        (std::isfinite(snapped) && std::abs(snapped - value) <= eb_)
            ? snapped
            : value;
    outliers.push_back(stored);
    return stored;
  }

  double eb_;
  std::int32_t radius_;
};

}  // namespace amrvis::compress
