#include "compress/lzss.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace amrvis::compress {

namespace {
constexpr std::size_t kWindow = 1u << 16;      // match offsets fit in 16 bits
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 258;         // length - 4 fits a byte
constexpr std::size_t kHashSize = 1u << 16;
// Per-level hash-chain depth: fast trades ratio for compress throughput,
// optimal spends more so the DP has the best matches to choose from.
constexpr int kChainFast = 16;
constexpr int kChainLazy = 48;
constexpr int kChainOptimal = 256;
// Token bit costs under the control-byte framing: every token owns one
// control bit; a literal adds 8 payload bits, a match 24 (u16 offset +
// u8 length). The control byte amortizes to exactly 1 bit/token, so these
// costs are exact whenever groups fill and off by < 1 byte at the tail.
constexpr std::uint64_t kLiteralBits = 9;
constexpr std::uint64_t kMatchBits = 25;
// v2 header: bit 63 of the leading size word flags the version (a v1
// writer stores the input byte count there, which can never reach 2^63),
// followed by one magic/version byte.
constexpr std::uint64_t kV2Bit = std::uint64_t{1} << 63;
constexpr std::uint8_t kV2Tag = 0xA2;  // magic nibble 0xA, version 2
// The densest possible token stream is back-to-back 3-byte match tokens,
// each yielding at most kMaxMatch output bytes (control bytes and literals
// only lower the density), so a token stream of T bytes cannot decode to
// more than T * kMaxMatch/3 bytes. Used to reject corrupt out_size headers.
constexpr std::uint64_t kMaxExpansionPerTokenByte = kMaxMatch / 3;  // 86

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 16;
}

/// Length of the common prefix of a and b, capped at `limit`. Word-at-a-time
/// compare; exact same result as the byte loop, just faster.
std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t limit) {
  std::size_t len = 0;
  if constexpr (std::endian::native == std::endian::little) {
    while (len + 8 <= limit) {
      std::uint64_t va, vb;
      std::memcpy(&va, a + len, 8);
      std::memcpy(&vb, b + len, 8);
      const std::uint64_t diff = va ^ vb;
      if (diff != 0)
        return len + (static_cast<std::size_t>(std::countr_zero(diff)) >> 3);
      len += 8;
    }
  }
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

/// Emits the shared token-stream framing (control byte per 8 tokens, LSB
/// first). Groups open lazily on the first token, so empty input produces
/// an empty token stream — the v1 writer's dangling control byte for
/// empty input is a v1-only quirk.
class TokenWriter {
 public:
  explicit TokenWriter(Bytes& tokens) : tokens_(tokens) {}

  void literal(std::uint8_t b) {
    open_slot(false);
    tokens_.push_back(b);
  }

  void match(std::size_t off, std::size_t len) {
    open_slot(true);
    tokens_.push_back(static_cast<std::uint8_t>(off & 0xff));
    tokens_.push_back(static_cast<std::uint8_t>((off >> 8) & 0xff));
    tokens_.push_back(static_cast<std::uint8_t>(len - kMinMatch));
  }

  void finish() {
    if (bits_ > 0) tokens_[control_pos_] = control_;
  }

 private:
  void open_slot(bool is_match) {
    if (bits_ == 0 || bits_ == 8) {
      if (bits_ == 8) tokens_[control_pos_] = control_;
      control_ = 0;
      bits_ = 0;
      control_pos_ = tokens_.size();
      tokens_.push_back(0);
    }
    if (is_match) control_ |= static_cast<std::uint8_t>(1u << bits_);
    ++bits_;
  }

  Bytes& tokens_;
  std::uint8_t control_ = 0;
  int bits_ = 0;  // tokens described by the open control byte (0 = none)
  std::size_t control_pos_ = 0;
};

struct Match {
  std::uint32_t len = 0;
  std::uint32_t off = 0;
};

/// Hash-chain match finder shared by every parse level. Positions are
/// inserted lazily and monotonically (each exactly once), so a find(i)
/// sees every j < i as a candidate no matter how the parser moved there —
/// greedy skips, lazy deferrals and the optimal per-position scan all
/// share one insertion discipline.
class MatchFinder {
 public:
  MatchFinder(std::span<const std::uint8_t> in, int max_chain)
      : in_(in),
        max_chain_(max_chain),
        head_(kHashSize, -1),
        prev_(in.size(), -1) {}

  Match find(std::size_t i) {
    insert_below(i);
    Match m;
    if (i + kMinMatch > in_.size()) return m;
    const std::size_t limit = std::min(kMaxMatch, in_.size() - i);
    std::int64_t cand = head_[hash4(&in_[i])];
    int chain = 0;
    std::size_t best_len = kMinMatch - 1;  // accept nothing shorter
    while (cand >= 0 && chain < max_chain_ &&
           i - static_cast<std::size_t>(cand) <= kWindow) {
      const std::size_t c = static_cast<std::size_t>(cand);
      // Beating best_len requires bytes [0, best_len] to all match, so a
      // mismatch at position best_len rules the candidate out without a
      // full compare (best_len < limit here, so the read is in bounds).
      if (in_[c + best_len] == in_[i + best_len]) {
        const std::size_t len = match_length(&in_[c], &in_[i], limit);
        if (len > best_len) {
          best_len = len;
          m.len = static_cast<std::uint32_t>(len);
          m.off = static_cast<std::uint32_t>(i - c);
          if (len == limit) break;
        }
      }
      cand = prev_[c];
      ++chain;
    }
    return m;
  }

 private:
  void insert_below(std::size_t i) {
    const std::size_t stop =
        std::min(i, in_.size() < kMinMatch ? 0 : in_.size() - kMinMatch + 1);
    for (; next_ < stop; ++next_) {
      const std::uint32_t h = hash4(&in_[next_]);
      prev_[next_] = head_[h];
      head_[h] = static_cast<std::int64_t>(next_);
    }
  }

  std::span<const std::uint8_t> in_;
  int max_chain_;
  std::vector<std::int64_t> head_;
  std::vector<std::int64_t> prev_;
  std::size_t next_ = 0;  // first position not yet inserted
};

/// Greedy with skip acceleration: after a run of consecutive literal
/// misses the parser emits extra literals without searching (the LZ4
/// trick), so incompressible stretches cost hash lookups sub-linearly.
/// This is the compress-throughput mode for the chunked tile path.
void parse_fast(std::span<const std::uint8_t> in, TokenWriter& tw) {
  MatchFinder mf(in, kChainFast);
  std::size_t i = 0;
  std::size_t miss = 0;
  while (i < in.size()) {
    const Match m = mf.find(i);
    if (m.len >= kMinMatch) {
      tw.match(m.off, m.len);
      i += m.len;
      miss = 0;
    } else {
      tw.literal(in[i]);
      ++i;
      ++miss;
      for (std::size_t s = miss >> 5; s > 0 && i < in.size(); --s) {
        tw.literal(in[i]);
        ++i;
      }
    }
  }
  tw.finish();
}

/// One-step-deferred lazy matching (the default): before committing to a
/// match, peek at the next position; a strictly longer match there repays
/// the 9-bit literal it costs (each byte a longer match additionally
/// covers would otherwise cost >= 9/4 bits downstream). Matches already
/// >= kGoodEnough are taken immediately — deferring past them almost
/// never wins and the second search is the lazy mode's whole cost.
void parse_lazy(std::span<const std::uint8_t> in, TokenWriter& tw) {
  constexpr std::uint32_t kGoodEnough = 32;
  MatchFinder mf(in, kChainLazy);
  std::size_t i = 0;
  Match cur = mf.find(0);
  while (i < in.size()) {
    if (cur.len >= kMinMatch) {
      if (cur.len < kGoodEnough && i + 1 < in.size()) {
        const Match next = mf.find(i + 1);
        if (next.len > cur.len) {
          tw.literal(in[i]);
          ++i;
          cur = next;
          continue;
        }
      }
      tw.match(cur.off, cur.len);
      i += cur.len;
    } else {
      tw.literal(in[i]);
      ++i;
    }
    cur = mf.find(i);
  }
  tw.finish();
}

/// DP optimal parse for the 9/25-bit cost model: a forward pass records
/// the longest match at every position, a backward pass picks the
/// cheapest token per position considering EVERY admissible match length
/// (a match of length L at offset O implies matches of all lengths
/// 4..L at O). Truncated lengths matter — the suffix cost is not
/// monotone, so "longest match or literal" alone is not optimal.
void parse_optimal(std::span<const std::uint8_t> in, TokenWriter& tw) {
  const std::size_t n = in.size();
  MatchFinder mf(in, kChainOptimal);
  std::vector<std::uint32_t> mlen(n);
  std::vector<std::uint32_t> moff(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Match m = mf.find(i);
    mlen[i] = m.len;
    moff[i] = m.off;
  }
  std::vector<std::uint64_t> cost(n + 1, 0);
  std::vector<std::uint32_t> take(n, 1);  // 1 = literal, else match length
  for (std::size_t i = n; i-- > 0;) {
    std::uint64_t best = kLiteralBits + cost[i + 1];
    std::uint32_t len = 1;
    for (std::size_t l = kMinMatch; l <= mlen[i]; ++l) {
      const std::uint64_t c = kMatchBits + cost[i + l];
      if (c < best) {
        best = c;
        len = static_cast<std::uint32_t>(l);
      }
    }
    cost[i] = best;
    take[i] = len;
  }
  for (std::size_t i = 0; i < n;) {
    if (take[i] == 1) {
      tw.literal(in[i]);
      ++i;
    } else {
      tw.match(moff[i], take[i]);
      i += take[i];
    }
  }
  tw.finish();
}

/// Overlap-safe match copy into a pre-sized buffer. Disjoint ranges use
/// one memcpy; a self-overlapping match (off < len) is periodic with
/// period `off`, so the already-written prefix is replicated in doubling
/// blocks — the byte-by-byte semantics at block-copy speed.
void copy_match(std::uint8_t* base, std::size_t pos, std::size_t off,
                std::size_t len) {
  std::uint8_t* dst = base + pos;
  const std::uint8_t* src = dst - off;
  if (off >= len) {
    std::memcpy(dst, src, len);
    return;
  }
  std::memcpy(dst, src, off);
  std::size_t copied = off;
  while (copied < len) {
    const std::size_t n = std::min(copied, len - copied);
    std::memcpy(dst + copied, dst, n);
    copied += n;
  }
}

}  // namespace

std::string_view lzss_level_suffix(LzssLevel level) {
  switch (level) {
    case LzssLevel::kFast:
      return "+fast";
    case LzssLevel::kOptimal:
      return "+optimal";
    case LzssLevel::kLazy:
      break;
  }
  return "";
}

LzssLevelSplit split_lzss_level(const std::string& name) {
  const auto ends_with = [&](std::string_view suffix) {
    return name.size() > suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  };
  if (ends_with("+fast"))
    return {name.substr(0, name.size() - 5), LzssLevel::kFast};
  if (ends_with("+lazy"))
    return {name.substr(0, name.size() - 5), LzssLevel::kLazy};
  if (ends_with("+optimal"))
    return {name.substr(0, name.size() - 8), LzssLevel::kOptimal};
  return {name, LzssLevel::kLazy};
}

bool codec_names_compatible(const std::string& a, const std::string& b) {
  return split_lzss_level(a).base == split_lzss_level(b).base;
}

Bytes lzss_encode(std::span<const std::uint8_t> input, LzssLevel level) {
  OBS_SPAN("stage.lzss.encode",
           {"bytes", static_cast<std::int64_t>(input.size())});
  Bytes out;
  ByteWriter w(out);
  w.put<std::uint64_t>(static_cast<std::uint64_t>(input.size()) | kV2Bit);
  w.put<std::uint8_t>(kV2Tag);

  Bytes tokens;
  TokenWriter tw(tokens);
  switch (level) {
    case LzssLevel::kFast:
      parse_fast(input, tw);
      break;
    case LzssLevel::kLazy:
      parse_lazy(input, tw);
      break;
    case LzssLevel::kOptimal:
      parse_optimal(input, tw);
      break;
  }
  w.put_blob(tokens);
  return out;
}

Bytes lzss_encode_v1(std::span<const std::uint8_t> input) {
  // The PR3-era greedy writer, frozen byte-for-byte (including the
  // dangling control byte on empty input): the embedded-seed identity
  // test and the v1-leniency regressions pin this output. Do not
  // "improve" it — that is what v2 is for.
  constexpr int kMaxChainV1 = 48;
  Bytes out;
  ByteWriter w(out);
  w.put<std::uint64_t>(input.size());

  Bytes tokens;
  std::uint8_t control = 0;
  int control_bits = 0;
  std::size_t control_pos = 0;

  auto open_group = [&] {
    control = 0;
    control_bits = 0;
    control_pos = tokens.size();
    tokens.push_back(0);
  };
  auto close_group = [&] { tokens[control_pos] = control; };

  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(input.size(), -1);

  open_group();
  std::size_t i = 0;
  while (i < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (i + kMinMatch <= input.size()) {
      const std::uint32_t h = hash4(&input[i]);
      const std::size_t limit = std::min(kMaxMatch, input.size() - i);
      std::int64_t cand = head[h];
      int chain = 0;
      while (cand >= 0 && chain < kMaxChainV1 &&
             i - static_cast<std::size_t>(cand) <= kWindow) {
        const std::size_t c = static_cast<std::size_t>(cand);
        if (input[c + best_len] == input[i + best_len]) {
          const std::size_t len = match_length(&input[c], &input[i], limit);
          if (len > best_len) {
            best_len = len;
            best_off = i - c;
            if (len == limit) break;
          }
        }
        cand = prev[c];
        ++chain;
      }
    }

    if (best_len >= kMinMatch) {
      control |= static_cast<std::uint8_t>(1u << control_bits);
      tokens.push_back(static_cast<std::uint8_t>(best_off & 0xff));
      tokens.push_back(static_cast<std::uint8_t>((best_off >> 8) & 0xff));
      tokens.push_back(static_cast<std::uint8_t>(best_len - kMinMatch));
      const std::size_t end = i + best_len;
      for (; i < end && i + kMinMatch <= input.size(); ++i) {
        const std::uint32_t h = hash4(&input[i]);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      i = end;
    } else {
      tokens.push_back(input[i]);
      if (i + kMinMatch <= input.size()) {
        const std::uint32_t h = hash4(&input[i]);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      ++i;
    }

    if (++control_bits == 8) {
      close_group();
      if (i < input.size()) open_group();
      else control_bits = -1;  // group already closed
    }
  }
  if (control_bits >= 0) close_group();

  w.put_blob(tokens);
  return out;
}

Bytes lzss_decode(std::span<const std::uint8_t> blob) {
  OBS_SPAN("stage.lzss.decode",
           {"bytes", static_cast<std::int64_t>(blob.size())});
  ByteReader r(blob);
  const std::uint64_t header = r.get<std::uint64_t>();
  const bool v2 = (header & kV2Bit) != 0;
  const std::uint64_t out_size = v2 ? (header & ~kV2Bit) : header;
  if (v2) {
    const auto tag = r.get<std::uint8_t>();
    AMRVIS_CHECK(ErrorCode::kCorruptPayload, tag == kV2Tag,
                 "lzss: bad v2 magic/version byte");
  }
  const auto tokens = r.get_blob();
  // v2 is strict about its framing; v1 blobs historically tolerated (and
  // frozen payloads may contain) trailing bytes.
  if (v2)
    AMRVIS_CHECK(ErrorCode::kCorruptPayload, r.remaining() == 0,
                 "lzss: trailing bytes after token stream");
  // out_size is attacker-controlled on a corrupt blob; an unbounded
  // reserve can OOM. Cap it at the maximum possible expansion of the
  // token stream actually present before allocating anything.
  AMRVIS_CHECK(
      ErrorCode::kCorruptPayload,
      out_size <= static_cast<std::uint64_t>(tokens.size()) *
                      kMaxExpansionPerTokenByte,
      "lzss: output size exceeds maximum token-stream expansion");

  // Pre-sized output: out_size is validated above, every write below is
  // bounds-checked against it, and the match copy runs at block-copy
  // speed instead of byte-wise push_back.
  Bytes out(static_cast<std::size_t>(out_size));
  std::size_t pos = 0;
  std::size_t t = 0;
  while (pos < out_size) {
    AMRVIS_CHECK(ErrorCode::kCorruptPayload, t < tokens.size(),
                 "lzss: truncated token stream");
    const std::uint8_t control = tokens[t++];
    for (int bit = 0; bit < 8; ++bit) {
      if (pos == out_size) {
        // Control bits past the final token describe nothing; the
        // encoder leaves them clear, so a set one is corruption (v1
        // blobs keep the historical leniency).
        if (v2)
          AMRVIS_CHECK(ErrorCode::kCorruptPayload, (control >> bit) == 0,
                       "lzss: set control bits past the final token");
        break;
      }
      if (control & (1u << bit)) {
        AMRVIS_CHECK(ErrorCode::kCorruptPayload, t + 3 <= tokens.size(),
                     "lzss: truncated match");
        const std::size_t off = static_cast<std::size_t>(tokens[t]) |
                                (static_cast<std::size_t>(tokens[t + 1]) << 8);
        const std::size_t actual_off = off == 0 ? kWindow : off;
        const std::size_t len = static_cast<std::size_t>(tokens[t + 2]) +
                                kMinMatch;
        t += 3;
        AMRVIS_CHECK(ErrorCode::kCorruptPayload, actual_off <= pos,
                     "lzss: bad offset");
        // A well-formed stream's matches sum exactly to out_size; a
        // match that would overrun it is corruption, not a longer
        // result (the seed decoder returned an oversized buffer here).
        AMRVIS_CHECK(ErrorCode::kCorruptPayload, len <= out_size - pos,
                     "lzss: match overruns declared output size");
        copy_match(out.data(), pos, actual_off, len);
        pos += len;
      } else {
        AMRVIS_CHECK(ErrorCode::kCorruptPayload, t < tokens.size(),
                     "lzss: truncated literal");
        out[pos++] = tokens[t++];
      }
    }
  }
  // v2 requires exact token-stream consumption; v1 ignores trailing
  // token bytes (and its empty-input blobs carry a dangling control
  // byte, so the leniency is load-bearing for frozen payloads).
  if (v2)
    AMRVIS_CHECK(ErrorCode::kCorruptPayload, t == tokens.size(),
                 "lzss: trailing token bytes");
  return out;
}

}  // namespace amrvis::compress
