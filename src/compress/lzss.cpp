#include "compress/lzss.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "util/error.hpp"

namespace amrvis::compress {

namespace {
constexpr std::size_t kWindow = 1u << 16;      // match offsets fit in 16 bits
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 258;         // length - kMinMatch fits a byte
constexpr std::size_t kHashSize = 1u << 16;
constexpr int kMaxChain = 48;
// The densest possible token stream is back-to-back 3-byte match tokens,
// each yielding at most kMaxMatch output bytes (control bytes and literals
// only lower the density), so a token stream of T bytes cannot decode to
// more than T * kMaxMatch/3 bytes. Used to reject corrupt out_size headers.
constexpr std::uint64_t kMaxExpansionPerTokenByte = kMaxMatch / 3;  // 86

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 16;
}

/// Length of the common prefix of a and b, capped at `limit`. Word-at-a-time
/// compare; exact same result as the byte loop, just faster.
std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t limit) {
  std::size_t len = 0;
  if constexpr (std::endian::native == std::endian::little) {
    while (len + 8 <= limit) {
      std::uint64_t va, vb;
      std::memcpy(&va, a + len, 8);
      std::memcpy(&vb, b + len, 8);
      const std::uint64_t diff = va ^ vb;
      if (diff != 0)
        return len + (static_cast<std::size_t>(std::countr_zero(diff)) >> 3);
      len += 8;
    }
  }
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}
}  // namespace

Bytes lzss_encode(std::span<const std::uint8_t> input) {
  Bytes out;
  ByteWriter w(out);
  w.put<std::uint64_t>(input.size());

  // Token stream: control byte describes the next 8 tokens (bit set =>
  // match). A literal is 1 byte; a match is offset(u16) + length-4 (u8).
  Bytes tokens;
  std::uint8_t control = 0;
  int control_bits = 0;
  std::size_t control_pos = 0;

  auto open_group = [&] {
    control = 0;
    control_bits = 0;
    control_pos = tokens.size();
    tokens.push_back(0);
  };
  auto close_group = [&] { tokens[control_pos] = control; };

  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(input.size(), -1);

  open_group();
  std::size_t i = 0;
  while (i < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (i + kMinMatch <= input.size()) {
      const std::uint32_t h = hash4(&input[i]);
      const std::size_t limit = std::min(kMaxMatch, input.size() - i);
      std::int64_t cand = head[h];
      int chain = 0;
      while (cand >= 0 && chain < kMaxChain &&
             i - static_cast<std::size_t>(cand) <= kWindow) {
        const std::size_t c = static_cast<std::size_t>(cand);
        // Beating best_len requires bytes [0, best_len] to all match, so a
        // mismatch at position best_len rules the candidate out without a
        // full compare (best_len < limit here, so the read is in bounds).
        // A rejected candidate still costs a chain slot, exactly as the
        // full compare would have — the selected matches, and therefore the
        // output bytes, are identical to the plain loop's.
        if (input[c + best_len] == input[i + best_len]) {
          const std::size_t len = match_length(&input[c], &input[i], limit);
          if (len > best_len) {
            best_len = len;
            best_off = i - c;
            if (len == limit) break;
          }
        }
        cand = prev[c];
        ++chain;
      }
    }

    if (best_len >= kMinMatch) {
      control |= static_cast<std::uint8_t>(1u << control_bits);
      tokens.push_back(static_cast<std::uint8_t>(best_off & 0xff));
      tokens.push_back(static_cast<std::uint8_t>((best_off >> 8) & 0xff));
      tokens.push_back(static_cast<std::uint8_t>(best_len - kMinMatch));
      // Insert hash entries for every covered position so later matches
      // can reference them.
      const std::size_t end = i + best_len;
      for (; i < end && i + kMinMatch <= input.size(); ++i) {
        const std::uint32_t h = hash4(&input[i]);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      i = end;
    } else {
      tokens.push_back(input[i]);
      if (i + kMinMatch <= input.size()) {
        const std::uint32_t h = hash4(&input[i]);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      ++i;
    }

    if (++control_bits == 8) {
      close_group();
      if (i < input.size()) open_group();
      else control_bits = -1;  // group already closed
    }
  }
  if (control_bits >= 0) close_group();

  w.put_blob(tokens);
  return out;
}

Bytes lzss_decode(std::span<const std::uint8_t> blob) {
  ByteReader r(blob);
  const auto out_size = r.get<std::uint64_t>();
  const auto tokens = r.get_blob();
  // out_size is attacker-controlled on a corrupt blob; an unbounded
  // reserve can OOM. Cap it at the maximum possible expansion of the
  // token stream actually present before allocating anything.
  AMRVIS_CHECK(
      ErrorCode::kCorruptPayload,
      out_size <= static_cast<std::uint64_t>(tokens.size()) *
                      kMaxExpansionPerTokenByte,
      "lzss: output size exceeds maximum token-stream expansion");

  Bytes out;
  out.reserve(static_cast<std::size_t>(out_size));
  std::size_t t = 0;
  while (out.size() < out_size) {
    AMRVIS_CHECK(ErrorCode::kCorruptPayload, t < tokens.size(),
                 "lzss: truncated token stream");
    const std::uint8_t control = tokens[t++];
    for (int bit = 0; bit < 8 && out.size() < out_size; ++bit) {
      if (control & (1u << bit)) {
        AMRVIS_CHECK(ErrorCode::kCorruptPayload, t + 3 <= tokens.size(),
                     "lzss: truncated match");
        const std::size_t off = static_cast<std::size_t>(tokens[t]) |
                                (static_cast<std::size_t>(tokens[t + 1]) << 8);
        const std::size_t actual_off = off == 0 ? kWindow : off;
        const std::size_t len = static_cast<std::size_t>(tokens[t + 2]) +
                                kMinMatch;
        t += 3;
        AMRVIS_CHECK(ErrorCode::kCorruptPayload, actual_off <= out.size(),
                     "lzss: bad offset");
        const std::size_t start = out.size() - actual_off;
        for (std::size_t k = 0; k < len; ++k)
          out.push_back(out[start + k]);  // may self-overlap, byte-by-byte
      } else {
        AMRVIS_CHECK(ErrorCode::kCorruptPayload, t < tokens.size(),
                     "lzss: truncated literal");
        out.push_back(tokens[t++]);
      }
    }
  }
  return out;
}

}  // namespace amrvis::compress
