#include "compress/tile_cache.hpp"

#include <atomic>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace amrvis::compress {

namespace {

std::size_t value_bytes(const Array3<double>& v) {
  return static_cast<std::size_t>(v.size()) * sizeof(double);
}

// Registry mirrors of TileCache::Counters, aggregated over every cache
// instance in the process. The per-instance counters_ stay authoritative
// for the public counters() API; these exist so a metrics snapshot sees
// cache behavior without a handle to the cache object. Byte/entry gauges
// are delta-maintained, so they track the sum across instances.
struct CacheObs {
  obs::Counter& hits = obs::counter("tilecache.hits");
  obs::Counter& misses = obs::counter("tilecache.misses");
  obs::Counter& evictions = obs::counter("tilecache.evictions");
  obs::Counter& bypasses = obs::counter("tilecache.bypasses");
  obs::Counter& failed_decodes = obs::counter("tilecache.failed_decodes");
  obs::Counter& quarantine_refusals =
      obs::counter("tilecache.quarantine_refusals");
  obs::Gauge& bytes = obs::gauge("tilecache.bytes");
  obs::Gauge& entries = obs::gauge("tilecache.entries");
  obs::Gauge& peak_bytes = obs::gauge("tilecache.peak_bytes");
};

CacheObs& cache_obs() {
  static CacheObs* o = new CacheObs();  // leaked: see obs/metrics.hpp
  return *o;
}

}  // namespace

TileCache::TileCache(std::size_t byte_budget) : budget_(byte_budget) {}

std::uint64_t TileCache::new_container_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void TileCache::make_room(std::size_t need) {
  // Evict from the LRU tail until `need` fits; in-flight entries are not
  // in lru_ and are never evicted (their bytes are not counted yet).
  while (!lru_.empty() && counters_.bytes + need > budget_) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = map_.find(victim);
    AMRVIS_ASSERT(it != map_.end() && it->second.ready);
    counters_.bytes -= it->second.bytes;
    counters_.entries -= 1;
    counters_.evictions += 1;
    cache_obs().bytes.add(-static_cast<std::int64_t>(it->second.bytes));
    cache_obs().entries.add(-1);
    cache_obs().evictions.add();
    map_.erase(it);
  }
}

std::shared_ptr<const Array3<double>> TileCache::get_or_decode(
    std::uint64_t container, std::int64_t tile, const Decode& decode,
    bool* hit) {
  const Key key{container, tile};
  std::shared_future<Value> wait_on;
  std::promise<Value> mine;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (quarantined_.count(key) != 0) {
      counters_.quarantine_refusals += 1;
      cache_obs().quarantine_refusals.add();
      throw Error(ErrorCode::kQuarantined,
                  "tile_cache: slot is quarantined",
                  {container, tile, -1});
    }
    auto it = map_.find(key);
    if (it != map_.end()) {
      if (it->second.ready) {
        // Completed entry: touch LRU, serve under the lock.
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        counters_.hits += 1;
        cache_obs().hits.add();
        if (hit != nullptr) *hit = true;
        return it->second.future.get();
      }
      // In-flight: wait outside the lock; the future rethrows a failed
      // decode into every waiter.
      counters_.hits += 1;
      cache_obs().hits.add();
      wait_on = it->second.future;
    } else {
      Entry e;
      e.future = mine.get_future().share();
      e.owner = &mine;
      map_.emplace(key, std::move(e));
      counters_.misses += 1;
      cache_obs().misses.add();
    }
  }
  if (wait_on.valid()) {
    if (hit != nullptr) *hit = true;
    return wait_on.get();
  }

  // This caller owns the decode; run it unlocked so concurrent queries
  // for other tiles proceed.
  if (hit != nullptr) *hit = false;
  Value value;
  try {
    value = std::make_shared<const Array3<double>>(decode());
    // An injected cache-insert fault takes the failure path below — the
    // same unwinding a decode throw exercises, at the publish boundary.
    AMRVIS_FAULT_POINT(::amrvis::fault::Site::kCacheInsert);
  } catch (...) {
    // Poison the waiters with the same exception, drop the entry so a
    // later call retries fresh, and rethrow to this caller.
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = map_.find(key);
      if (it != map_.end() && it->second.owner == &mine) map_.erase(it);
      counters_.failed_decodes += 1;
      cache_obs().failed_decodes.add();
      failures_[key] += 1;
    }
    mine.set_exception(std::current_exception());
    throw;
  }
  mine.set_value(value);

  const std::size_t bytes = value_bytes(*value);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  // invalidate()/clear() may have raced this in-flight entry away (and a
  // retry may even have inserted a NEW entry under the same key); the
  // value is still correct for every holder of our future, but only the
  // entry we inserted may be finalized here.
  if (it == map_.end() || it->second.owner != &mine) return value;
  if (bytes > budget_) {
    // Larger than the whole cache: serve it, never retain it — the byte
    // bound holds at all times, not just between calls.
    map_.erase(it);
    counters_.bypasses += 1;
    cache_obs().bypasses.add();
    return value;
  }
  make_room(bytes);
  lru_.push_front(key);
  it->second.ready = true;
  it->second.bytes = bytes;
  it->second.lru_it = lru_.begin();
  counters_.bytes += bytes;
  counters_.entries += 1;
  counters_.peak_bytes = std::max(counters_.peak_bytes, counters_.bytes);
  cache_obs().bytes.add(static_cast<std::int64_t>(bytes));
  cache_obs().entries.add(1);
  cache_obs().peak_bytes.set_max(cache_obs().bytes.value());
  return value;
}

void TileCache::invalidate(std::uint64_t container) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.container == container) {
      if (it->second.ready) {
        counters_.bytes -= it->second.bytes;
        counters_.entries -= 1;
        cache_obs().bytes.add(-static_cast<std::int64_t>(it->second.bytes));
        cache_obs().entries.add(-1);
        lru_.erase(it->second.lru_it);
        it = map_.erase(it);
      } else {
        // In-flight: the decoding thread drops it on completion (its
        // map_.find(key) miss above); nothing to reclaim yet.
        it = map_.erase(it);
      }
    } else {
      ++it;
    }
  }
}

void TileCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  // Drops in-flight entries too: their decoders finalize nothing (owner
  // check) and their waiters still get the value through the future.
  map_.clear();
  lru_.clear();
  cache_obs().bytes.add(-static_cast<std::int64_t>(counters_.bytes));
  cache_obs().entries.add(-static_cast<std::int64_t>(counters_.entries));
  counters_.bytes = 0;
  counters_.entries = 0;
}

void TileCache::quarantine(std::uint64_t container, std::int64_t tile) {
  const Key key{container, tile};
  std::lock_guard<std::mutex> lk(mu_);
  quarantined_.insert(key);
  // Drop any retained value for the slot: a quarantined tile must not be
  // servable from a stale cache entry.
  auto it = map_.find(key);
  if (it != map_.end()) {
    if (it->second.ready) {
      counters_.bytes -= it->second.bytes;
      counters_.entries -= 1;
      cache_obs().bytes.add(-static_cast<std::int64_t>(it->second.bytes));
      cache_obs().entries.add(-1);
      lru_.erase(it->second.lru_it);
    }
    map_.erase(it);
  }
}

void TileCache::unquarantine(std::uint64_t container) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = quarantined_.begin(); it != quarantined_.end();) {
    if (it->container == container)
      it = quarantined_.erase(it);
    else
      ++it;
  }
  for (auto it = failures_.begin(); it != failures_.end();) {
    if (it->first.container == container)
      it = failures_.erase(it);
    else
      ++it;
  }
}

bool TileCache::is_quarantined(std::uint64_t container,
                               std::int64_t tile) const {
  std::lock_guard<std::mutex> lk(mu_);
  return quarantined_.count(Key{container, tile}) != 0;
}

std::int64_t TileCache::failure_count(std::uint64_t container,
                                      std::int64_t tile) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = failures_.find(Key{container, tile});
  return it == failures_.end() ? 0 : it->second;
}

TileCache::Counters TileCache::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

}  // namespace amrvis::compress
