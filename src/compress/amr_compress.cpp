#include "compress/amr_compress.hpp"

#include <algorithm>
#include <cstring>

#include "compress/chunked.hpp"
#include "compress/lzss.hpp"
#include "util/parallel.hpp"

namespace amrvis::compress {

using amr::AmrHierarchy;
using amr::AmrLevel;
using amr::Box;
using amr::FArrayBox;

namespace {

/// A codec that is already a ChunkedCompressor tiles (and parallelizes)
/// on its own; wrapping it again would emit nested containers on the
/// compress side and, worse, mis-wrap on the decompress side: every blob
/// it produces is a container carrying the *inner* codec's name, which a
/// second wrapper would reject as a codec mismatch.
const ChunkedCompressor* as_chunked_codec(const Compressor& comp) {
  return dynamic_cast<const ChunkedCompressor*>(&comp);
}

Bytes compress_patch(const Compressor& comp, View3<const double> data,
                     double abs_eb, const AmrChunkPolicy& policy) {
  if (data.size() > policy.oversized_patch_cells &&
      as_chunked_codec(comp) == nullptr)
    return ChunkedCompressor(comp, policy.tile).compress(data, abs_eb);
  return comp.compress(data, abs_eb);
}

Array3<double> decompress_patch(const Compressor& comp,
                                std::span<const std::uint8_t> blob) {
  if (ChunkedCompressor::is_chunked_blob(blob) &&
      as_chunked_codec(comp) == nullptr)
    return ChunkedCompressor(comp).decompress(blob);
  return comp.decompress(blob);
}

/// Copy the cells of `local` (a box in `full`'s 0-based index space) into
/// a box-shaped array.
Array3<double> slice_box(const Array3<double>& full, const Box& local) {
  Array3<double> out(local.shape());
  const Shape3 os = out.shape();
  for (std::int64_t dz = 0; dz < os.nz; ++dz)
    for (std::int64_t dy = 0; dy < os.ny; ++dy)
      std::memcpy(&out(0, dy, dz),
                  &full(local.lo().x, local.lo().y + dy, local.lo().z + dz),
                  static_cast<std::size_t>(os.nx) * sizeof(double));
  return out;
}

}  // namespace

AmrTileCache::AmrTileCache(TileCache& cache, const AmrCompressed& compressed)
    : cache_(&cache) {
  ids_.reserve(compressed.levels.size());
  for (const auto& lvl : compressed.levels) {
    std::vector<std::uint64_t> level_ids;
    level_ids.reserve(lvl.patches.size());
    for (std::size_t p = 0; p < lvl.patches.size(); ++p)
      level_ids.push_back(TileCache::new_container_id());
    ids_.push_back(std::move(level_ids));
  }
}

TileCacheRef AmrTileCache::ref(int level, std::size_t patch) const {
  AMRVIS_REQUIRE_MSG(
      level >= 0 && static_cast<std::size_t>(level) < ids_.size(),
      "AmrTileCache: level out of range");
  const auto& lvl = ids_[static_cast<std::size_t>(level)];
  AMRVIS_REQUIRE_MSG(patch < lvl.size(), "AmrTileCache: patch out of range");
  return {cache_, lvl[patch]};
}

std::size_t AmrCompressed::compressed_bytes() const {
  std::size_t n = 0;
  for (const auto& lvl : levels)
    for (const auto& p : lvl.patches) n += p.blob.size();
  return n;
}

std::size_t AmrCompressed::original_bytes() const {
  return static_cast<std::size_t>(original_cells) * sizeof(double);
}

MinMax hierarchy_min_max(const AmrHierarchy& hier) {
  MinMax mm;
  for (int l = 0; l < hier.num_levels(); ++l)
    for (const FArrayBox& fab : hier.level(l).fabs) {
      const MinMax fm = min_max(fab.values());
      mm.min = std::min(mm.min, fm.min);
      mm.max = std::max(mm.max, fm.max);
    }
  return mm;
}

AmrCompressed compress_hierarchy(const AmrHierarchy& hier,
                                 const Compressor& comp, double rel_eb,
                                 RedundantHandling handling,
                                 const AmrChunkPolicy& policy) {
  AMRVIS_REQUIRE(hier.num_levels() >= 1);
  const MinMax mm = hierarchy_min_max(hier);
  const double range = mm.range() > 0 ? mm.range()
                                      : std::max(std::abs(mm.max), 1.0);
  const double abs_eb = rel_eb * range;

  AmrCompressed out;
  out.compressor_name = comp.name();
  out.rel_eb = rel_eb;
  out.abs_eb = abs_eb;
  out.handling = handling;
  out.ref_ratio = hier.ref_ratio();
  out.original_cells = hier.total_stored_cells();

  for (int l = 0; l < hier.num_levels(); ++l) {
    const AmrLevel& lvl = hier.level(l);
    out.domains.push_back(lvl.domain);
    out.boxes.emplace_back(lvl.box_array.boxes());

    // Optionally neutralize redundant coarse cells before compression.
    std::vector<Array3<std::uint8_t>> masks;
    if (handling == RedundantHandling::kMeanFill &&
        l + 1 < hier.num_levels())
      masks = hier.covered_masks(l);

    AmrCompressedLevel clevel;
    clevel.patches.resize(lvl.fabs.size());
    parallel_for(static_cast<std::int64_t>(lvl.fabs.size()),
                 [&](std::int64_t p) {
      const FArrayBox& fab = lvl.fabs[static_cast<std::size_t>(p)];
      if (!masks.empty()) {
        const auto& mask = masks[static_cast<std::size_t>(p)];
        // Mean of the uncovered cells; fall back to overall mean if the
        // patch is fully covered.
        double sum = 0.0;
        std::int64_t n_unc = 0;
        const auto vals = fab.values();
        for (std::int64_t i = 0; i < fab.size(); ++i)
          if (!mask[i]) {
            sum += vals[static_cast<std::size_t>(i)];
            ++n_unc;
          }
        double fill = 0.0;
        if (n_unc > 0) {
          fill = sum / static_cast<double>(n_unc);
        } else {
          fill = mean(vals);
        }
        FArrayBox filled = fab;
        auto fvals = filled.values();
        for (std::int64_t i = 0; i < fab.size(); ++i)
          if (mask[i]) fvals[static_cast<std::size_t>(i)] = fill;
        clevel.patches[static_cast<std::size_t>(p)].blob =
            compress_patch(comp, filled.view(), abs_eb, policy);
      } else {
        clevel.patches[static_cast<std::size_t>(p)].blob =
            compress_patch(comp, fab.view(), abs_eb, policy);
      }
    });
    out.levels.push_back(std::move(clevel));
  }
  return out;
}

AmrHierarchy decompress_hierarchy(const AmrCompressed& compressed,
                                  const Compressor& comp) {
  AMRVIS_REQUIRE_MSG(
      codec_names_compatible(comp.name(), compressed.compressor_name),
      "decompress_hierarchy: codec mismatch");
  AmrHierarchy hier(compressed.ref_ratio);
  for (std::size_t l = 0; l < compressed.levels.size(); ++l) {
    AmrLevel lvl;
    lvl.domain = compressed.domains[l];
    lvl.box_array = amr::BoxArray(compressed.boxes[l]);
    lvl.fabs.resize(compressed.boxes[l].size());
    const auto& clevel = compressed.levels[l];
    parallel_for(static_cast<std::int64_t>(clevel.patches.size()),
                 [&](std::int64_t p) {
      const Box& box = compressed.boxes[l][static_cast<std::size_t>(p)];
      Array3<double> data = decompress_patch(
          comp, clevel.patches[static_cast<std::size_t>(p)].blob);
      AMRVIS_REQUIRE_MSG(data.shape() == box.shape(),
                         "decompress_hierarchy: shape mismatch");
      FArrayBox fab(box);
      std::copy(data.span().begin(), data.span().end(),
                fab.values().begin());
      lvl.fabs[static_cast<std::size_t>(p)] = std::move(fab);
    });
    hier.add_level(std::move(lvl));
  }
  if (compressed.handling == RedundantHandling::kMeanFill)
    hier.synchronize_coarse_from_fine();
  return hier;
}

std::vector<RegionPatch> decompress_level_region(
    const AmrCompressed& compressed, const Compressor& comp, int level,
    const amr::Box& region, RegionDecodeStats* stats,
    const AmrTileCache* cache, const LevelReadOptions& read) {
  AMRVIS_REQUIRE_MSG(
      codec_names_compatible(comp.name(), compressed.compressor_name),
      "decompress_level_region: codec mismatch");
  AMRVIS_REQUIRE_MSG(
      level >= 0 &&
          static_cast<std::size_t>(level) < compressed.levels.size(),
      "decompress_level_region: level out of range");
  const auto& clevel = compressed.levels[static_cast<std::size_t>(level)];
  const auto& boxes = compressed.boxes[static_cast<std::size_t>(level)];
  const ChunkedCompressor* chunked_codec = as_chunked_codec(comp);

  std::vector<RegionPatch> out;
  RegionDecodeStats agg;
  for (std::size_t p = 0; p < boxes.size(); ++p) {
    const auto overlap = boxes[p].intersect(region);
    if (!overlap) continue;
    if (read.cancel != nullptr) read.cancel->check();
    if (read.skip_patch && read.skip_patch(level, p)) continue;
    const Bytes& blob = clevel.patches[p].blob;
    // The container speaks 0-based patch-local coordinates.
    const Box local{overlap->lo() - boxes[p].lo(),
                    overlap->hi() - boxes[p].lo()};
    RegionPatch rp;
    rp.patch = p;
    rp.box = *overlap;
    const TileCacheRef cref =
        cache != nullptr ? cache->ref(level, p) : TileCacheRef{};
    if (chunked_codec != nullptr) {
      // The codec itself is chunked: every patch blob is a container.
      RegionDecodeStats rs;
      rp.data = chunked_codec->decompress_region(blob, local, &rs, cref,
                                                 read.cancel);
      agg.tiles_decoded += rs.tiles_decoded;
      agg.tiles_total += rs.tiles_total;
      agg.cache_hits += rs.cache_hits;
    } else if (ChunkedCompressor::is_chunked_blob(blob)) {
      // Oversized patch routed through the container at compress time.
      RegionDecodeStats rs;
      rp.data = ChunkedCompressor(comp).decompress_region(blob, local, &rs,
                                                          cref, read.cancel);
      agg.tiles_decoded += rs.tiles_decoded;
      agg.tiles_total += rs.tiles_total;
      agg.cache_hits += rs.cache_hits;
    } else if (cref) {
      // Plain blob through the shared cache: one whole-decode entry per
      // patch, sliced per query.
      bool was_hit = false;
      const auto full = cref.cache->get_or_decode(
          cref.container, TileCache::kWholeBlob,
          [&] { return comp.decompress(blob); }, &was_hit);
      AMRVIS_REQUIRE_MSG(full->shape() == boxes[p].shape(),
                         "decompress_level_region: shape mismatch");
      rp.data = slice_box(*full, local);
      (was_hit ? agg.cache_hits : agg.tiles_decoded) += 1;
      agg.tiles_total += 1;
    } else {
      // Plain blob: no partial decode possible; inflate and slice.
      const Array3<double> full = comp.decompress(blob);
      AMRVIS_REQUIRE_MSG(full.shape() == boxes[p].shape(),
                         "decompress_level_region: shape mismatch");
      rp.data = slice_box(full, local);
      agg.tiles_decoded += 1;
      agg.tiles_total += 1;
    }
    out.push_back(std::move(rp));
  }
  if (stats != nullptr) *stats = agg;
  return out;
}

}  // namespace amrvis::compress
