#include "compress/compressor.hpp"

#include <string_view>

#include "compress/chunked.hpp"
#include "compress/interp.hpp"
#include "compress/lzss.hpp"
#include "compress/szlr.hpp"
#include "compress/zfp_like.hpp"
#include "util/stats.hpp"

namespace amrvis::compress {

double resolve_abs_eb(ErrorBoundMode mode, double eb,
                      std::span<const double> data) {
  AMRVIS_REQUIRE_MSG(eb > 0.0, "error bound must be positive");
  if (mode == ErrorBoundMode::kAbsolute) return eb;
  const MinMax mm = min_max(data);
  const double range = mm.range();
  if (range <= 0.0) {
    // Constant field: any positive absolute bound is valid; pick one tied
    // to the magnitude so the quantizer has a sensible bin width.
    const double magnitude = std::max(std::abs(mm.max), 1.0);
    return eb * magnitude;
  }
  return eb * range;
}

namespace {

/// The single registry both the factory dispatch and the public name
/// list are built from — a codec added here is automatically named in
/// the unknown-codec error and everywhere else the list is shown. Makers
/// receive the LZSS parse level split off the requested name so every
/// codec supports the "+fast"/"+lazy"/"+optimal" suffix uniformly.
using CompressorMaker = std::unique_ptr<Compressor> (*)(LzssLevel);
const std::vector<std::pair<std::string, CompressorMaker>>&
compressor_registry() {
  static const std::vector<std::pair<std::string, CompressorMaker>> r = {
      {"sz-lr",
       +[](LzssLevel level) -> std::unique_ptr<Compressor> {
         return std::make_unique<SzLrCompressor>(6, level);
       }},
      {"sz-interp",
       +[](LzssLevel level) -> std::unique_ptr<Compressor> {
         return std::make_unique<SzInterpCompressor>(64, level);
       }},
      {"zfp-like",
       +[](LzssLevel level) -> std::unique_ptr<Compressor> {
         return std::make_unique<ZfpLikeCompressor>(level);
       }},
  };
  return r;
}

}  // namespace

const std::vector<std::string>& registered_compressor_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& [n, maker] : compressor_registry()) out.push_back(n);
    return out;
  }();
  return names;
}

std::unique_ptr<Compressor> make_compressor(const std::string& name) {
  // An optional "+fast"/"+lazy"/"+optimal" suffix picks the LZSS parse
  // level (default lazy); codec name()s re-emit the suffix so
  // make_compressor(codec->name()) round-trips the level.
  const LzssLevelSplit split = split_lzss_level(name);
  for (const auto& [known, maker] : compressor_registry())
    if (split.base == known) return maker(split.level);
  // "chunked-<codec>" wraps any registered codec in the tile-parallel
  // container (src/compress/chunked.hpp); an optional "@TXxTYxTZ" suffix
  // selects the tile shape, e.g. "chunked-sz-lr@32x32x16", so the tile
  // policy is configurable wherever a codec name is (CLI flags, the AMR
  // routing policy) instead of being a hard constant.
  constexpr std::string_view prefix = "chunked-";
  if (name.size() > prefix.size() &&
      name.compare(0, prefix.size(), prefix) == 0) {
    std::string base = name.substr(prefix.size());
    ChunkShape tile;
    if (const auto at = base.find('@'); at != std::string::npos) {
      tile = parse_chunk_shape(base.substr(at + 1));
      base = base.substr(0, at);
    }
    return std::make_unique<ChunkedCompressor>(make_compressor(base), tile);
  }
  // The full registry in the message: a typo'd name (CLI flag, config
  // file, container header) should cost one read, not a source dive.
  std::string known;
  for (const std::string& n : registered_compressor_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw Error("unknown compressor: '" + name + "' (registered: " + known +
              "; any of them takes an LZSS parse-level suffix +fast/+lazy/"
              "+optimal and wraps in the tile container as "
              "chunked-<codec> or chunked-<codec>@TXxTYxTZ, e.g. "
              "chunked-sz-lr+optimal@32x32x16)");
}

}  // namespace amrvis::compress
