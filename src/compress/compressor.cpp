#include "compress/compressor.hpp"

#include <string_view>

#include "compress/chunked.hpp"
#include "compress/interp.hpp"
#include "compress/szlr.hpp"
#include "compress/zfp_like.hpp"
#include "util/stats.hpp"

namespace amrvis::compress {

double resolve_abs_eb(ErrorBoundMode mode, double eb,
                      std::span<const double> data) {
  AMRVIS_REQUIRE_MSG(eb > 0.0, "error bound must be positive");
  if (mode == ErrorBoundMode::kAbsolute) return eb;
  const MinMax mm = min_max(data);
  const double range = mm.range();
  if (range <= 0.0) {
    // Constant field: any positive absolute bound is valid; pick one tied
    // to the magnitude so the quantizer has a sensible bin width.
    const double magnitude = std::max(std::abs(mm.max), 1.0);
    return eb * magnitude;
  }
  return eb * range;
}

std::unique_ptr<Compressor> make_compressor(const std::string& name) {
  if (name == "sz-lr") return std::make_unique<SzLrCompressor>();
  if (name == "sz-interp") return std::make_unique<SzInterpCompressor>();
  if (name == "zfp-like") return std::make_unique<ZfpLikeCompressor>();
  // "chunked-<codec>" wraps any registered codec in the tile-parallel
  // container (src/compress/chunked.hpp); an optional "@TXxTYxTZ" suffix
  // selects the tile shape, e.g. "chunked-sz-lr@32x32x16", so the tile
  // policy is configurable wherever a codec name is (CLI flags, the AMR
  // routing policy) instead of being a hard constant.
  constexpr std::string_view prefix = "chunked-";
  if (name.size() > prefix.size() &&
      name.compare(0, prefix.size(), prefix) == 0) {
    std::string base = name.substr(prefix.size());
    ChunkShape tile;
    if (const auto at = base.find('@'); at != std::string::npos) {
      tile = parse_chunk_shape(base.substr(at + 1));
      base = base.substr(0, at);
    }
    return std::make_unique<ChunkedCompressor>(make_compressor(base), tile);
  }
  throw Error("unknown compressor: " + name +
              " (expected sz-lr, sz-interp, zfp-like, or "
              "chunked-<codec>[@TXxTYxTZ])");
}

}  // namespace amrvis::compress
