#include "compress/zfp_like.hpp"

#include <algorithm>
#include <cmath>

#include "compress/huffman.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "compress/lzss.hpp"

namespace amrvis::compress {

namespace {

constexpr std::uint32_t kMagic = 0x5a46504c;  // "ZFPL"
constexpr int kBlock = 4;
constexpr int kBlockCells = kBlock * kBlock * kBlock;
// Integer headroom for the block-floating-point conversion.
constexpr int kPrecisionBits = 40;
// Worst-case infinity-norm amplification of coefficient rounding through
// the 3-D inverse lifting, measured empirically on adversarial blocks
// (spiky cosmology data reaches ~10) and padded generously; used to
// derate the quantization step so the absolute bound holds.
constexpr double kInverseGain = 24.0;

/// ZFP's lifted forward transform on 4 values (exactly invertible).
inline void fwd_lift(std::int64_t& x, std::int64_t& y, std::int64_t& z,
                     std::int64_t& w) {
  x += w;
  x >>= 1;
  w -= x;
  z += y;
  z >>= 1;
  y -= z;
  x += z;
  x >>= 1;
  z -= x;
  w += y;
  w >>= 1;
  y -= w;
  w += y >> 1;
  y -= w >> 1;
}

inline void inv_lift(std::int64_t& x, std::int64_t& y, std::int64_t& z,
                     std::int64_t& w) {
  y += w >> 1;
  w -= y >> 1;
  y += w;
  w <<= 1;
  w -= y;
  z += x;
  x <<= 1;
  x -= z;
  y += z;
  z <<= 1;
  z -= y;
  w += x;
  x <<= 1;
  x -= w;
}

void fwd_transform(std::int64_t q[kBlockCells]) {
  // x lines, then y, then z.
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 4; ++y) {
      auto* p = q + (z * 4 + y) * 4;
      fwd_lift(p[0], p[1], p[2], p[3]);
    }
  for (int z = 0; z < 4; ++z)
    for (int x = 0; x < 4; ++x) {
      auto at = [&](int y) -> std::int64_t& { return q[(z * 4 + y) * 4 + x]; };
      std::int64_t a = at(0), b = at(1), c = at(2), d = at(3);
      fwd_lift(a, b, c, d);
      at(0) = a;
      at(1) = b;
      at(2) = c;
      at(3) = d;
    }
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) {
      auto at = [&](int z) -> std::int64_t& { return q[(z * 4 + y) * 4 + x]; };
      std::int64_t a = at(0), b = at(1), c = at(2), d = at(3);
      fwd_lift(a, b, c, d);
      at(0) = a;
      at(1) = b;
      at(2) = c;
      at(3) = d;
    }
}

void inv_transform(std::int64_t q[kBlockCells]) {
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) {
      auto at = [&](int z) -> std::int64_t& { return q[(z * 4 + y) * 4 + x]; };
      std::int64_t a = at(0), b = at(1), c = at(2), d = at(3);
      inv_lift(a, b, c, d);
      at(0) = a;
      at(1) = b;
      at(2) = c;
      at(3) = d;
    }
  for (int z = 0; z < 4; ++z)
    for (int x = 0; x < 4; ++x) {
      auto at = [&](int y) -> std::int64_t& { return q[(z * 4 + y) * 4 + x]; };
      std::int64_t a = at(0), b = at(1), c = at(2), d = at(3);
      inv_lift(a, b, c, d);
      at(0) = a;
      at(1) = b;
      at(2) = c;
      at(3) = d;
    }
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 4; ++y) {
      auto* p = q + (z * 4 + y) * 4;
      inv_lift(p[0], p[1], p[2], p[3]);
    }
}

/// Zigzag map to unsigned symbols for the entropy stage.
inline std::uint32_t zigzag(std::int64_t v) {
  return static_cast<std::uint32_t>((static_cast<std::uint64_t>(v) << 1) ^
                                    static_cast<std::uint64_t>(v >> 63));
}
inline std::int64_t unzigzag(std::uint32_t u) {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

// Coefficients too large for a 32-bit zigzag symbol (tiny error bounds)
// escape to a raw int64 side stream.
constexpr std::uint32_t kEscape = 0xffffffffu;
constexpr std::int64_t kEscapeLimit = 1ll << 27;

}  // namespace

Bytes ZfpLikeCompressor::compress(View3<const double> data,
                                  double abs_eb) const {
  static auto& ops = obs::counter("codec.zfp-like.compress");
  ops.add();
  OBS_SPAN("codec.zfp-like.compress", {"cells", data.shape().size()});
  AMRVIS_REQUIRE(abs_eb > 0.0);
  const Shape3 s = data.shape();
  const std::int64_t nbx = (s.nx + kBlock - 1) / kBlock;
  const std::int64_t nby = (s.ny + kBlock - 1) / kBlock;
  const std::int64_t nbz = (s.nz + kBlock - 1) / kBlock;

  std::vector<std::uint32_t> symbols;
  std::vector<std::int64_t> escapes;
  Bytes exponents;  // one int16 per block, little-endian pairs
  symbols.reserve(static_cast<std::size_t>(s.size()));

  for (std::int64_t bk = 0; bk < nbz; ++bk)
    for (std::int64_t bj = 0; bj < nby; ++bj)
      for (std::int64_t bi = 0; bi < nbx; ++bi) {
        // Gather, padding partial blocks by clamping indices.
        double vals[kBlockCells];
        double max_abs = 0.0;
        for (int dz = 0; dz < kBlock; ++dz)
          for (int dy = 0; dy < kBlock; ++dy)
            for (int dx = 0; dx < kBlock; ++dx) {
              const std::int64_t i = std::min(bi * kBlock + dx, s.nx - 1);
              const std::int64_t j = std::min(bj * kBlock + dy, s.ny - 1);
              const std::int64_t k = std::min(bk * kBlock + dz, s.nz - 1);
              const double v = data(i, j, k);
              vals[(dz * kBlock + dy) * kBlock + dx] = v;
              max_abs = std::max(max_abs, std::abs(v));
            }
        int e = 0;
        if (max_abs > 0.0) std::frexp(max_abs, &e);
        exponents.push_back(static_cast<std::uint8_t>(e & 0xff));
        exponents.push_back(static_cast<std::uint8_t>((e >> 8) & 0xff));

        // Block floating point: scale so |q| < 2^kPrecisionBits.
        const double scale = std::ldexp(1.0, kPrecisionBits - e);
        std::int64_t q[kBlockCells];
        for (int c = 0; c < kBlockCells; ++c)
          q[c] = static_cast<std::int64_t>(std::llround(vals[c] * scale));

        fwd_transform(q);

        // Shift-quantize: drop `shift` low bits (with rounding) so the
        // reconstruction error stays below abs_eb / kInverseGain per
        // coefficient.
        const double step_real = abs_eb / kInverseGain * scale;
        int shift = 0;
        while ((1ll << (shift + 1)) <= static_cast<std::int64_t>(step_real) &&
               shift < 62)
          ++shift;
        symbols.push_back(static_cast<std::uint32_t>(shift));
        const std::int64_t half = shift > 0 ? (1ll << (shift - 1)) : 0;
        for (int c = 0; c < kBlockCells; ++c) {
          const std::int64_t rounded =
              q[c] >= 0 ? (q[c] + half) >> shift : -((-q[c] + half) >> shift);
          if (rounded >= kEscapeLimit || rounded <= -kEscapeLimit) {
            symbols.push_back(kEscape);
            escapes.push_back(rounded);
          } else {
            symbols.push_back(zigzag(rounded));
          }
        }
      }

  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint32_t>(kMagic);
  w.put<std::int64_t>(s.nx);
  w.put<std::int64_t>(s.ny);
  w.put<std::int64_t>(s.nz);
  w.put<double>(abs_eb);
  w.put_blob(lzss_encode(exponents, lzss_level_));
  w.put_blob(lzss_encode(huffman_encode(symbols), lzss_level_));
  w.put<std::uint64_t>(escapes.size());
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(escapes.data()),
               escapes.size() * sizeof(std::int64_t)});
  return blob;
}

Array3<double> ZfpLikeCompressor::decompress(
    std::span<const std::uint8_t> blob) const {
  static auto& ops = obs::counter("codec.zfp-like.decompress");
  ops.add();
  OBS_SPAN("codec.zfp-like.decompress",
           {"bytes", static_cast<std::int64_t>(blob.size())});
  ByteReader r(blob);
  AMRVIS_CHECK(ErrorCode::kCorruptPayload, r.get<std::uint32_t>() == kMagic,
               "zfp-like: bad magic");
  Shape3 s;
  s.nx = r.get<std::int64_t>();
  s.ny = r.get<std::int64_t>();
  s.nz = r.get<std::int64_t>();
  (void)r.get<double>();  // abs_eb (informational)
  // Header fields are attacker-controlled on a corrupt blob: reject
  // shapes that would overflow the cell count before anything is
  // allocated or looped over.
  constexpr std::int64_t kMaxDim = std::int64_t{1} << 24;
  constexpr std::int64_t kMaxCells = std::int64_t{1} << 31;
  AMRVIS_CHECK(ErrorCode::kCorruptPayload,
               s.nx >= 1 && s.ny >= 1 && s.nz >= 1 && s.nx <= kMaxDim &&
                   s.ny <= kMaxDim && s.nz <= kMaxDim &&
                   s.ny <= kMaxCells / s.nx &&
                   s.nz <= kMaxCells / (s.nx * s.ny),
               "zfp-like: corrupt shape");
  const Bytes exponents = lzss_decode(r.get_blob());
  const std::vector<std::uint32_t> symbols =
      huffman_decode(lzss_decode(r.get_blob()));
  const auto n_escapes = r.get<std::uint64_t>();
  // Checked before the multiply: a corrupt count near 2^61 would wrap the
  // byte size and sneak past get_bytes' own bounds check.
  AMRVIS_CHECK(ErrorCode::kCorruptPayload,
               n_escapes <= r.remaining() / sizeof(std::int64_t),
               "zfp-like: truncated escape stream");
  const auto escape_bytes =
      r.get_bytes(static_cast<std::size_t>(n_escapes) * sizeof(std::int64_t));
  std::vector<std::int64_t> escapes(static_cast<std::size_t>(n_escapes));
  std::memcpy(escapes.data(), escape_bytes.data(), escape_bytes.size());
  std::size_t escape_pos = 0;

  const std::int64_t nbx = (s.nx + kBlock - 1) / kBlock;
  const std::int64_t nby = (s.ny + kBlock - 1) / kBlock;
  const std::int64_t nbz = (s.nz + kBlock - 1) / kBlock;

  // Every block consumes exactly 1 + kBlockCells symbols; checked before
  // the output allocation so a corrupt shape cannot commit cells the
  // stored streams never encoded (nbx*nby*nbz <= cells <= kMaxCells, so
  // the product cannot overflow).
  AMRVIS_CHECK(ErrorCode::kCorruptPayload,
               static_cast<std::uint64_t>(symbols.size()) >=
                   static_cast<std::uint64_t>(nbx * nby * nbz) *
                       (1 + kBlockCells),
               "zfp-like: truncated symbols");

  Array3<double> out(s);
  auto ov = out.view();
  std::size_t sym = 0;
  std::size_t eb_pos = 0;
  for (std::int64_t bk = 0; bk < nbz; ++bk)
    for (std::int64_t bj = 0; bj < nby; ++bj)
      for (std::int64_t bi = 0; bi < nbx; ++bi) {
        AMRVIS_CHECK(ErrorCode::kCorruptPayload,
                     eb_pos + 2 <= exponents.size(),
                     "zfp-like: truncated exponents");
        const int e = static_cast<std::int16_t>(
            static_cast<std::uint16_t>(exponents[eb_pos]) |
            (static_cast<std::uint16_t>(exponents[eb_pos + 1]) << 8));
        eb_pos += 2;
        AMRVIS_CHECK(ErrorCode::kCorruptPayload,
                     sym + 1 + kBlockCells <= symbols.size(),
                     "zfp-like: truncated symbols");
        const int shift = static_cast<int>(symbols[sym++]);
        // A corrupt shift past the type width is UB in `rounded << shift`.
        AMRVIS_CHECK(ErrorCode::kCorruptPayload, shift >= 0 && shift < 64,
                     "zfp-like: corrupt block shift");
        std::int64_t q[kBlockCells];
        for (int c = 0; c < kBlockCells; ++c) {
          const std::uint32_t symbol = symbols[sym++];
          std::int64_t rounded;
          if (symbol == kEscape) {
            AMRVIS_CHECK(ErrorCode::kCorruptPayload,
                         escape_pos < escapes.size(),
                         "zfp-like: truncated escape stream");
            rounded = escapes[escape_pos++];
          } else {
            rounded = unzigzag(symbol);
          }
          q[c] = rounded << shift;
        }
        inv_transform(q);
        const double inv_scale = std::ldexp(1.0, e - kPrecisionBits);
        for (int dz = 0; dz < kBlock; ++dz)
          for (int dy = 0; dy < kBlock; ++dy)
            for (int dx = 0; dx < kBlock; ++dx) {
              const std::int64_t i = bi * kBlock + dx;
              const std::int64_t j = bj * kBlock + dy;
              const std::int64_t k = bk * kBlock + dz;
              if (i >= s.nx || j >= s.ny || k >= s.nz) continue;
              ov(i, j, k) =
                  static_cast<double>(q[(dz * kBlock + dy) * kBlock + dx]) *
                  inv_scale;
            }
      }
  return out;
}

}  // namespace amrvis::compress
