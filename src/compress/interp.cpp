#include "compress/interp.hpp"

#include <algorithm>
#include <cmath>

#include "compress/huffman.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "compress/lzss.hpp"
#include "compress/quantizer.hpp"

namespace amrvis::compress {

namespace {

constexpr std::uint32_t kMagic = 0x535a4950;  // "SZIP"

/// One interpolation sweep: the pass axis plus the axis geometry needed
/// to form predictions.
struct AxisGeom {
  int axis;           // 0=x, 1=y, 2=z
  std::int64_t h;     // half stride (distance to neighbors)
  std::int64_t s;     // full stride (distance between known points)
};

/// Boundary category of one target coordinate `t` along the pass axis.
/// Interior targets (kCub when the sweep chose cubic, else kLin) take the
/// branch-free stencil; the boundary categories survive only at the axis
/// ends — at most one hi target and one head target per line.
enum class Cat : std::uint8_t {
  kLin,     ///< linear stencil (or cubic sweep falling back near an edge)
  kCub,     ///< full cubic stencil is in-domain
  kHiX,     ///< upper boundary, two known points below: extrapolate
  kHiC,     ///< upper boundary, one known point below: copy
};

inline Cat categorize(std::int64_t t, std::int64_t n, std::int64_t h,
                      std::int64_t s) {
  if (t + h >= n) return (t - h - s >= 0) ? Cat::kHiX : Cat::kHiC;
  if (t - h - s >= 0 && t + h + s < n) return Cat::kCub;
  return Cat::kLin;
}

/// Linear-family prediction at element pointer `p` (the target), with
/// `eh`/`es` the element offsets of the half and full stride along the
/// pass axis. Expressions match the seed predictor exactly.
inline double predict_lin(const double* p, std::int64_t eh, std::int64_t es,
                          Cat c) {
  if (c == Cat::kHiX) return 1.5 * p[-eh] - 0.5 * p[-eh - es];
  if (c == Cat::kHiC) return p[-eh];
  return 0.5 * (p[-eh] + p[eh]);
}

inline double predict_cub(const double* p, std::int64_t eh, std::int64_t es,
                          Cat c) {
  if (c == Cat::kCub)
    return (-p[-eh - es] + 9.0 * p[-eh] + 9.0 * p[eh] - p[eh + es]) / 16.0;
  return predict_lin(p, eh, es, c);
}

/// Enumerate the targets of one (stride, axis) sweep in the fixed k, j, i
/// order and invoke fn(flat_index, category). Targets along the pass axis
/// sit at odd multiples of h; the other two axes enumerate the
/// already-known grid: axes before the pass axis (in sweep order x,y,z)
/// at stride h, later ones at stride s. For y/z sweeps the category is
/// constant along the inner x loop, so the hot loop is branch-free; for
/// the x sweep it is two register compares per target.
template <typename Fn>
void sweep_targets(const Shape3& sh, const AxisGeom& g, const Fn& fn) {
  const std::int64_t nxny = sh.nx * sh.ny;
  const std::int64_t h = g.h, s = g.s;
  if (g.axis == 0) {
    for (std::int64_t k = 0; k < sh.nz; k += s)
      for (std::int64_t j = 0; j < sh.ny; j += s) {
        const std::int64_t base = k * nxny + j * sh.nx;
        for (std::int64_t i = h; i < sh.nx; i += s)
          fn(base + i, categorize(i, sh.nx, h, s));
      }
  } else if (g.axis == 1) {
    for (std::int64_t k = 0; k < sh.nz; k += s)
      for (std::int64_t j = h; j < sh.ny; j += s) {
        const Cat c = categorize(j, sh.ny, h, s);
        const std::int64_t base = k * nxny + j * sh.nx;
        for (std::int64_t i = 0; i < sh.nx; i += h) fn(base + i, c);
      }
  } else {
    for (std::int64_t k = h; k < sh.nz; k += s) {
      const Cat c = categorize(k, sh.nz, h, s);
      for (std::int64_t j = 0; j < sh.ny; j += h) {
        const std::int64_t base = k * nxny + j * sh.nx;
        for (std::int64_t i = 0; i < sh.nx; i += h) fn(base + i, c);
      }
    }
  }
}

/// Element stride of one coordinate step along `axis`.
inline std::int64_t element_stride(const Shape3& sh, int axis) {
  return axis == 0 ? 1 : (axis == 1 ? sh.nx : sh.nx * sh.ny);
}

std::int64_t initial_stride(const Shape3& sh, std::int64_t cap) {
  const std::int64_t m = std::max({sh.nx, sh.ny, sh.nz});
  std::int64_t s = 2;
  while (s < m && s < cap) s <<= 1;
  return s;
}

}  // namespace

Bytes SzInterpCompressor::compress(View3<const double> data,
                                   double abs_eb) const {
  static auto& ops = obs::counter("codec.sz-interp.compress");
  ops.add();
  OBS_SPAN("codec.sz-interp.compress", {"cells", data.shape().size()});
  const Shape3 sh = data.shape();
  const LinearQuantizer quant(abs_eb);
  Array3<double> recon_arr(sh);
  double* rb = recon_arr.data();
  auto recon = recon_arr.view();
  const double* dp = data.data();

  // Anchor grid: store raw, copy into the reconstruction.
  const std::int64_t S = initial_stride(sh, max_stride_);
  std::vector<double> anchors;
  for (std::int64_t k = 0; k < sh.nz; k += S)
    for (std::int64_t j = 0; j < sh.ny; j += S)
      for (std::int64_t i = 0; i < sh.nx; i += S) {
        anchors.push_back(data(i, j, k));
        recon(i, j, k) = data(i, j, k);
      }

  // Every non-anchor point is the target of exactly one sweep; write the
  // codes through a cursor into a pre-sized buffer.
  std::vector<std::uint32_t> codes(static_cast<std::size_t>(sh.size()) -
                                   anchors.size());
  std::uint32_t* cp = codes.data();
  std::vector<double> outliers;
  Bytes choices;  // one byte per (level, axis) sweep: 1 = cubic

  for (std::int64_t s = S; s >= 2; s /= 2) {
    const std::int64_t h = s / 2;
    for (int axis = 0; axis < 3; ++axis) {
      const AxisGeom g{axis, h, s};
      const std::int64_t n_axis = axis == 0 ? sh.nx : (axis == 1 ? sh.ny
                                                                 : sh.nz);
      if (h >= n_axis && h > 0) {
        // No targets along this axis (degenerate dimension); still record
        // a choice byte so encoder and decoder stay in lockstep.
        choices.push_back(0);
        continue;
      }
      const std::int64_t estride = element_stride(sh, axis);
      const std::int64_t eh = h * estride;
      const std::int64_t es = s * estride;

      // Pass 1: pick linear vs cubic by total absolute error vs original.
      double err_lin = 0.0, err_cub = 0.0;
      sweep_targets(sh, g, [&](std::int64_t flat, Cat c) {
        const double* p = rb + flat;
        const double v = dp[flat];
        err_lin += std::abs(v - predict_lin(p, eh, es, c));
        err_cub += std::abs(v - predict_cub(p, eh, es, c));
      });
      const bool cubic = err_cub < err_lin;
      choices.push_back(cubic ? 1 : 0);

      // Pass 2: quantize.
      if (cubic) {
        sweep_targets(sh, g, [&](std::int64_t flat, Cat c) {
          double* p = rb + flat;
          const double pred = predict_cub(p, eh, es, c);
          double rv;
          *cp++ = quant.encode(dp[flat], pred, rv, outliers);
          *p = rv;
        });
      } else {
        sweep_targets(sh, g, [&](std::int64_t flat, Cat c) {
          double* p = rb + flat;
          const double pred = predict_lin(p, eh, es, c);
          double rv;
          *cp++ = quant.encode(dp[flat], pred, rv, outliers);
          *p = rv;
        });
      }
    }
  }

  AMRVIS_REQUIRE(cp == codes.data() + codes.size());

  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint32_t>(kMagic);
  w.put<std::int64_t>(sh.nx);
  w.put<std::int64_t>(sh.ny);
  w.put<std::int64_t>(sh.nz);
  w.put<double>(abs_eb);
  w.put<std::int64_t>(S);
  w.put_blob(choices);
  w.put<std::uint64_t>(anchors.size());
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(anchors.data()),
               anchors.size() * sizeof(double)});
  w.put_blob(lzss_encode(huffman_encode(codes), lzss_level_));
  w.put<std::uint64_t>(outliers.size());
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(outliers.data()),
               outliers.size() * sizeof(double)});
  return blob;
}

Array3<double> SzInterpCompressor::decompress(
    std::span<const std::uint8_t> blob) const {
  static auto& ops = obs::counter("codec.sz-interp.decompress");
  ops.add();
  OBS_SPAN("codec.sz-interp.decompress",
           {"bytes", static_cast<std::int64_t>(blob.size())});
  ByteReader r(blob);
  AMRVIS_CHECK(ErrorCode::kCorruptPayload, r.get<std::uint32_t>() == kMagic,
               "sz-interp: bad magic");
  Shape3 sh;
  sh.nx = r.get<std::int64_t>();
  sh.ny = r.get<std::int64_t>();
  sh.nz = r.get<std::int64_t>();
  const double abs_eb = r.get<double>();
  const std::int64_t S = r.get<std::int64_t>();
  // Header fields are attacker-controlled on a corrupt blob: reject
  // shapes that would overflow the cell count before anything is
  // allocated or looped over.
  constexpr std::int64_t kMaxDim = std::int64_t{1} << 24;
  constexpr std::int64_t kMaxCells = std::int64_t{1} << 31;
  AMRVIS_CHECK(ErrorCode::kCorruptPayload,
               sh.nx >= 1 && sh.ny >= 1 && sh.nz >= 1 && sh.nx <= kMaxDim &&
                   sh.ny <= kMaxDim && sh.nz <= kMaxDim &&
                   sh.ny <= kMaxCells / sh.nx &&
                   sh.nz <= kMaxCells / (sh.nx * sh.ny),
               "sz-interp: corrupt shape");
  AMRVIS_CHECK(ErrorCode::kCorruptPayload, S >= 2 && S <= kMaxDim,
               "sz-interp: corrupt anchor stride");

  const auto choice_span = r.get_blob();
  const Bytes choices(choice_span.begin(), choice_span.end());
  const auto n_anchor = r.get<std::uint64_t>();
  // Checked before the multiply: a corrupt count near 2^61 would wrap the
  // byte size and sneak past get_bytes' own bounds check.
  AMRVIS_CHECK(ErrorCode::kCorruptPayload,
               n_anchor <= r.remaining() / sizeof(double),
               "sz-interp: truncated anchor stream");
  const auto anchor_bytes =
      r.get_bytes(static_cast<std::size_t>(n_anchor) * sizeof(double));
  std::vector<double> anchors(static_cast<std::size_t>(n_anchor));
  std::memcpy(anchors.data(), anchor_bytes.data(), anchor_bytes.size());
  const std::vector<std::uint32_t> codes =
      huffman_decode(lzss_decode(r.get_blob()));
  const auto n_outliers = r.get<std::uint64_t>();
  // Checked before the multiply: a corrupt count near 2^61 would wrap the
  // byte size and sneak past get_bytes' own bounds check.
  AMRVIS_CHECK(ErrorCode::kCorruptPayload,
               n_outliers <= r.remaining() / sizeof(double),
               "sz-interp: truncated outlier stream");
  const auto outlier_bytes =
      r.get_bytes(static_cast<std::size_t>(n_outliers) * sizeof(double));
  std::vector<double> outliers(static_cast<std::size_t>(n_outliers));
  std::memcpy(outliers.data(), outlier_bytes.data(), outlier_bytes.size());

  // Validated BEFORE the output allocation and placement loop: a corrupt
  // count smaller than the anchor grid would otherwise read past the
  // anchors vector, and a corrupt shape would commit cells the stored
  // streams never encoded.
  const auto expected_anchors = static_cast<std::size_t>(
      ((sh.nx + S - 1) / S) * ((sh.ny + S - 1) / S) * ((sh.nz + S - 1) / S));
  AMRVIS_CHECK(ErrorCode::kCorruptPayload,
               anchors.size() == expected_anchors,
               "sz-interp: anchor count mismatch");

  // Every non-anchor point is the target of exactly one sweep, so the
  // code stream must hold one code per remaining point. One upfront
  // completeness check replaces the seed's per-point test.
  AMRVIS_CHECK(
      ErrorCode::kCorruptPayload,
      codes.size() >= static_cast<std::size_t>(sh.size()) - anchors.size(),
      "sz-interp: truncated code stream");

  const LinearQuantizer quant(abs_eb);
  Array3<double> out(sh);
  double* rb = out.data();
  auto recon = out.view();

  std::size_t anchor_pos = 0;
  for (std::int64_t k = 0; k < sh.nz; k += S)
    for (std::int64_t j = 0; j < sh.ny; j += S)
      for (std::int64_t i = 0; i < sh.nx; i += S)
        recon(i, j, k) = anchors[anchor_pos++];

  std::size_t code_pos = 0, outlier_pos = 0, choice_pos = 0;
  for (std::int64_t s = S; s >= 2; s /= 2) {
    const std::int64_t h = s / 2;
    for (int axis = 0; axis < 3; ++axis) {
      const AxisGeom g{axis, h, s};
      const std::int64_t n_axis = axis == 0 ? sh.nx : (axis == 1 ? sh.ny
                                                                 : sh.nz);
      AMRVIS_CHECK(ErrorCode::kCorruptPayload, choice_pos < choices.size(),
                   "sz-interp: truncated choice stream");
      const bool cubic = choices[choice_pos++] != 0;
      if (h >= n_axis && h > 0) continue;
      const std::int64_t estride = element_stride(sh, axis);
      const std::int64_t eh = h * estride;
      const std::int64_t es = s * estride;
      if (cubic) {
        sweep_targets(sh, g, [&](std::int64_t flat, Cat c) {
          double* p = rb + flat;
          const double pred = predict_cub(p, eh, es, c);
          *p = quant.decode(codes[code_pos++], pred, outliers, outlier_pos);
        });
      } else {
        sweep_targets(sh, g, [&](std::int64_t flat, Cat c) {
          double* p = rb + flat;
          const double pred = predict_lin(p, eh, es, c);
          *p = quant.decode(codes[code_pos++], pred, outliers, outlier_pos);
        });
      }
    }
  }
  return out;
}

}  // namespace amrvis::compress
