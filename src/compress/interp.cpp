#include "compress/interp.hpp"

#include <algorithm>
#include <cmath>

#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "compress/quantizer.hpp"

namespace amrvis::compress {

namespace {

constexpr std::uint32_t kMagic = 0x535a4950;  // "SZIP"

/// One interpolation target: global index plus the axis geometry needed
/// to form its prediction.
struct AxisGeom {
  int axis;           // 0=x, 1=y, 2=z
  std::int64_t h;     // half stride (distance to neighbors)
  std::int64_t s;     // full stride (distance between known points)
};

/// Predict the value at coordinate `t` along the pass axis from the
/// reconstructed field. `get(c)` reads the reconstructed value with the
/// pass-axis coordinate replaced by c. `n` is the axis extent.
template <typename Get>
double predict(const AxisGeom& g, std::int64_t t, std::int64_t n,
               bool cubic, const Get& get) {
  const std::int64_t a = t - g.h;
  const std::int64_t b = t + g.h;
  if (b >= n) {
    // Upper-boundary target: linear extrapolation from the two known
    // points below, falling back to a copy when only one exists.
    if (a - g.s >= 0) return 1.5 * get(a) - 0.5 * get(a - g.s);
    return get(a);
  }
  if (cubic && a - g.s >= 0 && b + g.s < n) {
    return (-get(a - g.s) + 9.0 * get(a) + 9.0 * get(b) - get(b + g.s)) /
           16.0;
  }
  return 0.5 * (get(a) + get(b));
}

/// Enumerate the targets of one (stride, axis) sweep in a fixed order and
/// invoke fn(i, j, k). Targets along `axis` sit at odd multiples of h;
/// the other two axes enumerate the already-known grid: the earlier axis
/// (in sweep order x,y,z) at stride h, the later one at stride s.
template <typename Fn>
void for_each_target(const Shape3& sh, const AxisGeom& g, const Fn& fn) {
  const std::int64_t n[3] = {sh.nx, sh.ny, sh.nz};
  // Strides per axis for this sweep.
  std::int64_t stride[3];
  for (int d = 0; d < 3; ++d) {
    if (d == g.axis) stride[d] = g.s;           // target axis: odd h steps
    else if (d < g.axis) stride[d] = g.h;       // already refined this level
    else stride[d] = g.s;                       // not yet refined
  }
  for (std::int64_t k = (g.axis == 2 ? g.h : 0); k < n[2];
       k += (g.axis == 2 ? stride[2] : stride[2]))
    for (std::int64_t j = (g.axis == 1 ? g.h : 0); j < n[1];
         j += (g.axis == 1 ? stride[1] : stride[1]))
      for (std::int64_t i = (g.axis == 0 ? g.h : 0); i < n[0];
           i += (g.axis == 0 ? stride[0] : stride[0]))
        fn(i, j, k);
}

std::int64_t initial_stride(const Shape3& sh, std::int64_t cap) {
  const std::int64_t m = std::max({sh.nx, sh.ny, sh.nz});
  std::int64_t s = 2;
  while (s < m && s < cap) s <<= 1;
  return s;
}

}  // namespace

Bytes SzInterpCompressor::compress(View3<const double> data,
                                   double abs_eb) const {
  const Shape3 sh = data.shape();
  const LinearQuantizer quant(abs_eb);
  Array3<double> recon_arr(sh);
  auto recon = recon_arr.view();

  // Anchor grid: store raw, copy into the reconstruction.
  const std::int64_t S = initial_stride(sh, max_stride_);
  std::vector<double> anchors;
  for (std::int64_t k = 0; k < sh.nz; k += S)
    for (std::int64_t j = 0; j < sh.ny; j += S)
      for (std::int64_t i = 0; i < sh.nx; i += S) {
        anchors.push_back(data(i, j, k));
        recon(i, j, k) = data(i, j, k);
      }

  std::vector<std::uint32_t> codes;
  codes.reserve(static_cast<std::size_t>(sh.size()));
  std::vector<double> outliers;
  Bytes choices;  // one byte per (level, axis) sweep: 1 = cubic

  for (std::int64_t s = S; s >= 2; s /= 2) {
    const std::int64_t h = s / 2;
    for (int axis = 0; axis < 3; ++axis) {
      const AxisGeom g{axis, h, s};
      const std::int64_t n_axis = axis == 0 ? sh.nx : (axis == 1 ? sh.ny
                                                                 : sh.nz);
      if (h >= n_axis && h > 0) {
        // No targets along this axis (degenerate dimension); still record
        // a choice byte so encoder and decoder stay in lockstep.
        choices.push_back(0);
        continue;
      }
      // Pass 1: pick linear vs cubic by total absolute error vs original.
      double err_lin = 0.0, err_cub = 0.0;
      for_each_target(sh, g, [&](std::int64_t i, std::int64_t j,
                                 std::int64_t k) {
        auto get = [&](std::int64_t c) {
          return axis == 0 ? recon(c, j, k)
                           : (axis == 1 ? recon(i, c, k) : recon(i, j, c));
        };
        const std::int64_t t = axis == 0 ? i : (axis == 1 ? j : k);
        const double v = data(i, j, k);
        err_lin += std::abs(v - predict(g, t, n_axis, false, get));
        err_cub += std::abs(v - predict(g, t, n_axis, true, get));
      });
      const bool cubic = err_cub < err_lin;
      choices.push_back(cubic ? 1 : 0);

      // Pass 2: quantize.
      for_each_target(sh, g, [&](std::int64_t i, std::int64_t j,
                                 std::int64_t k) {
        auto get = [&](std::int64_t c) {
          return axis == 0 ? recon(c, j, k)
                           : (axis == 1 ? recon(i, c, k) : recon(i, j, c));
        };
        const std::int64_t t = axis == 0 ? i : (axis == 1 ? j : k);
        const double pred = predict(g, t, n_axis, cubic, get);
        double rv;
        codes.push_back(quant.encode(data(i, j, k), pred, rv, outliers));
        recon(i, j, k) = rv;
      });
    }
  }

  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint32_t>(kMagic);
  w.put<std::int64_t>(sh.nx);
  w.put<std::int64_t>(sh.ny);
  w.put<std::int64_t>(sh.nz);
  w.put<double>(abs_eb);
  w.put<std::int64_t>(S);
  w.put_blob(choices);
  w.put<std::uint64_t>(anchors.size());
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(anchors.data()),
               anchors.size() * sizeof(double)});
  w.put_blob(lzss_encode(huffman_encode(codes)));
  w.put<std::uint64_t>(outliers.size());
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(outliers.data()),
               outliers.size() * sizeof(double)});
  return blob;
}

Array3<double> SzInterpCompressor::decompress(
    std::span<const std::uint8_t> blob) const {
  ByteReader r(blob);
  AMRVIS_REQUIRE_MSG(r.get<std::uint32_t>() == kMagic, "sz-interp: bad magic");
  Shape3 sh;
  sh.nx = r.get<std::int64_t>();
  sh.ny = r.get<std::int64_t>();
  sh.nz = r.get<std::int64_t>();
  const double abs_eb = r.get<double>();
  const std::int64_t S = r.get<std::int64_t>();

  const auto choice_span = r.get_blob();
  const Bytes choices(choice_span.begin(), choice_span.end());
  const auto n_anchor = r.get<std::uint64_t>();
  const auto anchor_bytes =
      r.get_bytes(static_cast<std::size_t>(n_anchor) * sizeof(double));
  std::vector<double> anchors(static_cast<std::size_t>(n_anchor));
  std::memcpy(anchors.data(), anchor_bytes.data(), anchor_bytes.size());
  const std::vector<std::uint32_t> codes =
      huffman_decode(lzss_decode(r.get_blob()));
  const auto n_outliers = r.get<std::uint64_t>();
  // Checked before the multiply: a corrupt count near 2^61 would wrap the
  // byte size and sneak past get_bytes' own bounds check.
  AMRVIS_REQUIRE_MSG(n_outliers <= r.remaining() / sizeof(double),
                     "sz-interp: truncated outlier stream");
  const auto outlier_bytes =
      r.get_bytes(static_cast<std::size_t>(n_outliers) * sizeof(double));
  std::vector<double> outliers(static_cast<std::size_t>(n_outliers));
  std::memcpy(outliers.data(), outlier_bytes.data(), outlier_bytes.size());

  const LinearQuantizer quant(abs_eb);
  Array3<double> out(sh);
  auto recon = out.view();

  std::size_t anchor_pos = 0;
  for (std::int64_t k = 0; k < sh.nz; k += S)
    for (std::int64_t j = 0; j < sh.ny; j += S)
      for (std::int64_t i = 0; i < sh.nx; i += S)
        recon(i, j, k) = anchors[anchor_pos++];
  AMRVIS_REQUIRE_MSG(anchor_pos == anchors.size(),
                     "sz-interp: anchor count mismatch");

  std::size_t code_pos = 0, outlier_pos = 0, choice_pos = 0;
  for (std::int64_t s = S; s >= 2; s /= 2) {
    const std::int64_t h = s / 2;
    for (int axis = 0; axis < 3; ++axis) {
      const AxisGeom g{axis, h, s};
      const std::int64_t n_axis = axis == 0 ? sh.nx : (axis == 1 ? sh.ny
                                                                 : sh.nz);
      AMRVIS_REQUIRE_MSG(choice_pos < choices.size(),
                         "sz-interp: truncated choice stream");
      const bool cubic = choices[choice_pos++] != 0;
      if (h >= n_axis && h > 0) continue;
      for_each_target(sh, g, [&](std::int64_t i, std::int64_t j,
                                 std::int64_t k) {
        auto get = [&](std::int64_t c) {
          return axis == 0 ? recon(c, j, k)
                           : (axis == 1 ? recon(i, c, k) : recon(i, j, c));
        };
        const std::int64_t t = axis == 0 ? i : (axis == 1 ? j : k);
        const double pred = predict(g, t, n_axis, cubic, get);
        AMRVIS_REQUIRE_MSG(code_pos < codes.size(),
                           "sz-interp: truncated code stream");
        recon(i, j, k) = quant.decode(codes[code_pos++], pred,
                                      outliers.data(), outlier_pos);
      });
    }
  }
  return out;
}

}  // namespace amrvis::compress
