#pragma once
// AMR-aware compression: apply an error-bounded compressor to a
// patch-based hierarchy the way the paper's pipeline does.
//
// - Each patch (FArrayBox) is compressed independently at every level.
// - The error bound is relative to the *global* value range of the
//   hierarchy (SZ REL mode, the paper's configuration), so one absolute
//   bound is shared by all patches.
// - Redundant coarse data (coarse cells covered by fine patches, paper
//   Fig. 3) is optionally neutralized before compression ("mean-fill"):
//   covered cells are replaced by the patch mean so they cost almost
//   nothing, and are rebuilt from the decompressed fine data afterwards
//   (the TAC/AMRIC optimization discussed in §2.2).
// - Oversized patches (> 2^17 cells) are routed through the tile-parallel
//   chunked container (compress/chunked.hpp) so a single large patch does
//   not serialize the pipeline; the per-patch blob is then a chunked
//   container, detected by magic on the decompress side.

#include <functional>
#include <vector>

#include "amr/hierarchy.hpp"
#include "compress/chunked.hpp"
#include "compress/compressor.hpp"
#include "util/cancel.hpp"
#include "util/stats.hpp"

namespace amrvis::compress {

/// Routing policy for oversized patches: patches above
/// `oversized_patch_cells` cells are compressed through the tile-parallel
/// chunked container (compress/chunked.hpp) with tile shape `tile`.
/// Detection on the decompress side is by container magic, so the policy
/// only matters when compressing. The defaults reproduce the historical
/// hard constants (2^17 cells, 64x64x16 tiles).
struct AmrChunkPolicy {
  std::int64_t oversized_patch_cells = std::int64_t{1} << 17;
  ChunkShape tile{};
};

enum class RedundantHandling {
  kKeep,      ///< compress coarse levels as stored (redundant data included)
  kMeanFill,  ///< neutralize covered cells, rebuild them after decompression
};

struct AmrCompressedPatch {
  Bytes blob;
};

struct AmrCompressedLevel {
  std::vector<AmrCompressedPatch> patches;
};

/// Result of compressing a hierarchy; retains everything needed to
/// decompress into an identically-structured hierarchy.
struct AmrCompressed {
  std::string compressor_name;
  double rel_eb = 0.0;
  double abs_eb = 0.0;
  RedundantHandling handling = RedundantHandling::kKeep;
  std::int64_t ref_ratio = 2;
  std::vector<AmrCompressedLevel> levels;
  std::vector<amr::Box> domains;           ///< per-level domain boxes
  std::vector<std::vector<amr::Box>> boxes;  ///< per-level patch boxes

  [[nodiscard]] std::size_t compressed_bytes() const;
  /// Bytes of the original stored doubles (all levels, incl. redundant).
  [[nodiscard]] std::size_t original_bytes() const;
  [[nodiscard]] double ratio() const {
    return static_cast<double>(original_bytes()) /
           static_cast<double>(compressed_bytes());
  }

  std::int64_t original_cells = 0;
};

/// A shared TileCache bound to one AmrCompressed: allocates one container
/// id per (level, patch) AT CONSTRUCTION, so every read path addressing
/// the cache through ref() is correctly sized by construction — the old
/// ad-hoc plain-patch cache (`vector<optional<Array3>>` sized by the
/// caller) required each consumer to re-check `size() >= patch count`;
/// a mis-sized caller now cannot exist. The binding aliases both the
/// cache and the compressed hierarchy; the caller keeps them alive (the
/// query service owns all three). Copying the binding is cheap-ish
/// (id table) and shares the underlying cache.
class AmrTileCache {
 public:
  AmrTileCache(TileCache& cache, const AmrCompressed& compressed);

  /// Cache handle of one patch blob; throws on out-of-range level/patch.
  [[nodiscard]] TileCacheRef ref(int level, std::size_t patch) const;

  /// The underlying shared store (budget, counters, invalidation).
  [[nodiscard]] TileCache& store() const { return *cache_; }

 private:
  TileCache* cache_;
  std::vector<std::vector<std::uint64_t>> ids_;  ///< [level][patch]
};

/// Compress every patch of `hier` with `comp` at relative bound `rel_eb`.
/// `policy` controls how oversized patches are routed through the chunked
/// container; the default reproduces the historical constants.
AmrCompressed compress_hierarchy(const amr::AmrHierarchy& hier,
                                 const Compressor& comp, double rel_eb,
                                 RedundantHandling handling,
                                 const AmrChunkPolicy& policy = {});

/// Rebuild a hierarchy (same structure) from an AmrCompressed. With
/// kMeanFill, covered coarse cells are restored by averaging the
/// decompressed fine data (synchronize_coarse_from_fine).
amr::AmrHierarchy decompress_hierarchy(const AmrCompressed& compressed,
                                       const Compressor& comp);

/// One patch's contribution to a region query: the intersection box (in
/// the level's index space) and the decoded values for exactly that box.
struct RegionPatch {
  std::size_t patch = 0;  ///< index into boxes[level] / patches
  amr::Box box;           ///< region ∩ patch box
  Array3<double> data;    ///< decoded values for `box`, box-shaped
};

/// Region variant of decompress_hierarchy: decode only the cells of level
/// `level` that intersect `region` (a box in that level's index space).
/// Chunked patch blobs inflate only the tiles the region touches
/// (ChunkedCompressor::decompress_region); plain blobs decode fully and
/// are sliced. Values are bit-identical to the corresponding cells of a
/// full decompress_hierarchy **before** coarse/fine synchronization: with
/// kMeanFill, covered coarse cells hold the mean-fill placeholder — query
/// the finest level covering the point (amr::sample_point_compressed does).
/// `stats`, when non-null, accumulates decode counts over all touched
/// patches (a plain patch counts as one tile). `cache`, when non-null
/// (must be bound to `compressed`), serves repeated tile/patch decodes
/// from the shared store — values stay bit-identical, only the decode
/// work moves.
/// Robustness knobs of the level read paths (decompress_level_region and
/// the compressed sampling entry points that forward to it).
struct LevelReadOptions {
  /// Checked at patch and tile granularity; fires as
  /// Error{kCancelled}/Error{kTimeout}.
  const util::CancelToken* cancel = nullptr;
  /// When set, patches it returns true for are skipped entirely — not
  /// decoded, not returned. The query service serves quarantined
  /// containers in this degraded mode (coarser data fills in for point/
  /// plane sampling) instead of failing the whole request.
  std::function<bool(int level, std::size_t patch)> skip_patch;
};

std::vector<RegionPatch> decompress_level_region(
    const AmrCompressed& compressed, const Compressor& comp, int level,
    const amr::Box& region, RegionDecodeStats* stats = nullptr,
    const AmrTileCache* cache = nullptr,
    const LevelReadOptions& read = {});

/// Global min/max over all stored cells of the hierarchy.
MinMax hierarchy_min_max(const amr::AmrHierarchy& hier);

}  // namespace amrvis::compress
