#pragma once
// AMR-aware compression: apply an error-bounded compressor to a
// patch-based hierarchy the way the paper's pipeline does.
//
// - Each patch (FArrayBox) is compressed independently at every level.
// - The error bound is relative to the *global* value range of the
//   hierarchy (SZ REL mode, the paper's configuration), so one absolute
//   bound is shared by all patches.
// - Redundant coarse data (coarse cells covered by fine patches, paper
//   Fig. 3) is optionally neutralized before compression ("mean-fill"):
//   covered cells are replaced by the patch mean so they cost almost
//   nothing, and are rebuilt from the decompressed fine data afterwards
//   (the TAC/AMRIC optimization discussed in §2.2).
// - Oversized patches (> 2^17 cells) are routed through the tile-parallel
//   chunked container (compress/chunked.hpp) so a single large patch does
//   not serialize the pipeline; the per-patch blob is then a chunked
//   container, detected by magic on the decompress side.

#include <vector>

#include "amr/hierarchy.hpp"
#include "compress/compressor.hpp"
#include "util/stats.hpp"

namespace amrvis::compress {

enum class RedundantHandling {
  kKeep,      ///< compress coarse levels as stored (redundant data included)
  kMeanFill,  ///< neutralize covered cells, rebuild them after decompression
};

struct AmrCompressedPatch {
  Bytes blob;
};

struct AmrCompressedLevel {
  std::vector<AmrCompressedPatch> patches;
};

/// Result of compressing a hierarchy; retains everything needed to
/// decompress into an identically-structured hierarchy.
struct AmrCompressed {
  std::string compressor_name;
  double rel_eb = 0.0;
  double abs_eb = 0.0;
  RedundantHandling handling = RedundantHandling::kKeep;
  std::int64_t ref_ratio = 2;
  std::vector<AmrCompressedLevel> levels;
  std::vector<amr::Box> domains;           ///< per-level domain boxes
  std::vector<std::vector<amr::Box>> boxes;  ///< per-level patch boxes

  [[nodiscard]] std::size_t compressed_bytes() const;
  /// Bytes of the original stored doubles (all levels, incl. redundant).
  [[nodiscard]] std::size_t original_bytes() const;
  [[nodiscard]] double ratio() const {
    return static_cast<double>(original_bytes()) /
           static_cast<double>(compressed_bytes());
  }

  std::int64_t original_cells = 0;
};

/// Compress every patch of `hier` with `comp` at relative bound `rel_eb`.
AmrCompressed compress_hierarchy(const amr::AmrHierarchy& hier,
                                 const Compressor& comp, double rel_eb,
                                 RedundantHandling handling);

/// Rebuild a hierarchy (same structure) from an AmrCompressed. With
/// kMeanFill, covered coarse cells are restored by averaging the
/// decompressed fine data (synchronize_coarse_from_fine).
amr::AmrHierarchy decompress_hierarchy(const AmrCompressed& compressed,
                                       const Compressor& comp);

/// Global min/max over all stored cells of the hierarchy.
MinMax hierarchy_min_max(const amr::AmrHierarchy& hier);

}  // namespace amrvis::compress
