#pragma once
// TileCache: byte-bounded shared LRU of decoded tiles — the caching layer
// between the compressed containers and every read path (region decode,
// point/plane sampling, tile streaming, streamed iso, query service).
//
// Entries are keyed by (container id, tile index): a container id names
// one compressed blob (one chunked patch container, or one plain patch
// blob — allocate ids with new_container_id(), or per hierarchy through
// AmrTileCache in compress/amr_compress.hpp), and the tile index is the
// container slot, or kWholeBlob for a plain blob's single whole-decode
// entry. This one keying scheme subsumes the old ad-hoc per-sweep
// `vector<optional<Array3>>` plain-patch cache: plain patches and chunked
// tiles now go through the same store, with the sizing invariant held by
// construction (AmrTileCache allocates exactly one id per patch) instead
// of re-checked at every call site.
//
// Concurrency:
//  - get_or_decode is thread safe; N concurrent callers of the same key
//    decode it exactly ONCE. The first caller inserts an in-flight entry
//    and runs `decode` outside the lock; the others wait on the entry's
//    shared_future. A decode that throws propagates the exception to the
//    decoding caller AND every waiter, then the entry is removed so a
//    later call retries fresh (a transient failure is not cached).
//  - The byte budget bounds RETAINED entries at all times: completed
//    entries are LRU-evicted before a new entry's bytes are added, and a
//    single value larger than the whole budget is returned but never
//    retained (a bypass). Readers hold values by shared_ptr, so an
//    evicted value stays alive for the readers that already have it —
//    the budget is a cache-residency bound, not a global liveness bound.
//
// Determinism: the cache only changes WHERE decoded bytes come from,
// never what they are — every consumer stays bit-identical with the
// cache on, off, shared or thrashing.

#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "util/array3d.hpp"

namespace amrvis::compress {

class TileCache;

/// One container's handle into a shared cache: the pair every per-blob
/// read path (ChunkedCompressor::decompress_region, TileStream) threads
/// through. A default-constructed ref means "no cache" — decode fresh.
struct TileCacheRef {
  TileCache* cache = nullptr;
  std::uint64_t container = 0;

  explicit operator bool() const { return cache != nullptr; }
};

class TileCache {
 public:
  /// Budget for "never evict" (still once-flag + shared).
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();
  /// Tile index of a plain (non-container) blob's whole-decode entry.
  static constexpr std::int64_t kWholeBlob = -1;

  explicit TileCache(std::size_t byte_budget);

  /// Process-unique container id (a plain atomic counter).
  static std::uint64_t new_container_id();

  using Decode = std::function<Array3<double>()>;

  /// The decoded value of (container, tile), decoding via `decode` at
  /// most once across all concurrent callers. `hit`, when non-null, is
  /// set to true iff THIS call did not execute `decode` itself (found
  /// ready, or waited on another caller's in-flight decode) — so a
  /// caller's miss count is exactly its decode-work count.
  std::shared_ptr<const Array3<double>> get_or_decode(
      std::uint64_t container, std::int64_t tile, const Decode& decode,
      bool* hit = nullptr);

  /// Drop every completed entry of one container (e.g. its blob was
  /// replaced). In-flight decodes complete normally and are then dropped.
  void invalidate(std::uint64_t container);

  /// Drop every completed entry.
  void clear();

  /// Slot-level quarantine (the circuit breaker's enforcement hook). A
  /// quarantined (container, tile) refuses get_or_decode with
  /// Error{kQuarantined} — it never decodes and never blocks a waiter.
  /// Quarantine is always EXPLICIT: a failed decode only increments
  /// failure_count (retry-fresh stays the default), and only
  /// quarantine()/unquarantine() change the refused set, so one bad tile
  /// blocks exactly as long as its quarantining caller decides.
  void quarantine(std::uint64_t container, std::int64_t tile);
  /// Lift the quarantine (and reset failure counts) for every slot of
  /// `container`.
  void unquarantine(std::uint64_t container);
  [[nodiscard]] bool is_quarantined(std::uint64_t container,
                                    std::int64_t tile) const;
  /// Decode failures recorded for one slot since its last unquarantine.
  [[nodiscard]] std::int64_t failure_count(std::uint64_t container,
                                           std::int64_t tile) const;

  /// Point-in-time counters (monotonic except bytes/entries).
  struct Counters {
    std::int64_t hits = 0;        ///< served without running decode
    std::int64_t misses = 0;      ///< this caller ran decode
    std::int64_t evictions = 0;   ///< completed entries LRU-evicted
    std::int64_t bypasses = 0;    ///< values larger than the whole budget
    std::int64_t failed_decodes = 0;
    std::int64_t quarantine_refusals = 0;  ///< requests refused by quarantine
    std::size_t bytes = 0;        ///< retained bytes right now
    std::size_t peak_bytes = 0;   ///< high-water mark of `bytes`
    std::int64_t entries = 0;     ///< retained entries right now
  };
  [[nodiscard]] Counters counters() const;

  [[nodiscard]] std::size_t byte_budget() const { return budget_; }

 private:
  struct Key {
    std::uint64_t container = 0;
    std::int64_t tile = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // splitmix-style mix of the two words.
      std::uint64_t x =
          k.container * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(k.tile);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };
  using Value = std::shared_ptr<const Array3<double>>;
  struct Entry {
    std::shared_future<Value> future;  ///< waiters block here, unlocked
    const void* owner = nullptr;  ///< in-flight: inserting call's token,
                                  ///< so a decode finalizes only its OWN
                                  ///< entry (invalidate may race a new
                                  ///< entry in under the same key)
    bool ready = false;
    std::size_t bytes = 0;             ///< 0 until ready
    std::list<Key>::iterator lru_it;   ///< valid iff ready
  };

  /// Evict completed LRU entries until `need` more bytes fit. Caller
  /// holds mu_.
  void make_room(std::size_t need);

  const std::size_t budget_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> map_;
  std::list<Key> lru_;  ///< front = most recently used
  std::unordered_map<Key, std::int64_t, KeyHash> failures_;
  std::unordered_set<Key, KeyHash> quarantined_;
  Counters counters_{};
};

}  // namespace amrvis::compress
