#pragma once
// Concurrent query service over a compressed AMR hierarchy — the front
// end that turns the region-decode / sampling / streamed-iso machinery
// into something N interactive clients can hit at once:
//
//  - One byte-bounded decoded-tile cache (compress/tile_cache.hpp) bound
//    to the hierarchy is shared by every query, so concurrent or repeated
//    requests touching the same tiles decode them once (per-entry
//    once-flag) and the hot working set stays resident within a fixed
//    byte budget.
//  - Every request executes under ScopedParallelBackend(kPool): all
//    internal parallel loops share the persistent work-stealing pool
//    (util/thread_pool.hpp) instead of forking per-caller OpenMP teams,
//    so N clients cannot oversubscribe the machine N-fold.
//  - The batched front end (run_batch) merges overlapping region-decode
//    requests: the union of their (level, patch, tile) decode units is
//    deduplicated and prefetched across the pool, then each request is
//    served — overlapping tiles cost one decode for the whole batch
//    instead of one per request.
//
// Thread safety: all public methods may be called concurrently from any
// number of client threads. Per-request instrumentation (QueryStats) is
// stack-owned by each call; service-wide counters are atomics.
//
// Results are bit-identical to calling the underlying primitives
// directly without any cache — the cache moves decode work, never
// values.

#include <atomic>
#include <cstdint>
#include <future>
#include <vector>

#include "amr/sampling.hpp"
#include "compress/amr_compress.hpp"
#include "vis/amr_iso.hpp"

namespace amrvis::service {

/// Service configuration, fixed at construction.
struct ServiceOptions {
  /// Byte budget of the shared decoded-tile cache. Entries above the
  /// budget bypass the cache (decode still succeeds); the bound is never
  /// exceeded, see TileCache.
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Batch front end: deduplicate + prefetch the decode units of
  /// overlapping region requests before serving them.
  bool merge_regions = true;
  /// Base options for isosurface requests (the cache binding is filled
  /// in by the service; a caller-provided `cache` here is ignored).
  vis::StreamedIsoOptions iso{};
};

/// Per-request instrumentation, stack-owned by each call — never shared
/// between threads (the concurrency story for stats under the service).
struct QueryStats {
  std::int64_t tiles_decoded = 0;  ///< decodes this request ran itself
  std::int64_t cache_hits = 0;     ///< tiles served by the shared cache
  double queue_ms = 0.0;    ///< submit -> execution start (async/batch)
  double service_ms = 0.0;  ///< execution start -> finish
};

/// One query of the batched/async front end.
struct Request {
  enum class Kind { kPoint, kPlane, kRegion, kIso };
  Kind kind = Kind::kPoint;

  amr::IntVect point{};                  ///< kPoint: finest-space cell
  int axis = 0;                          ///< kPlane: 0, 1 or 2
  std::int64_t plane_index = 0;          ///< kPlane: finest-space index
  int level = 0;                         ///< kRegion: hierarchy level
  amr::Box region{};                     ///< kRegion: level-space box
  double iso = 0.0;                      ///< kIso: isovalue
  vis::VisMethod method = vis::VisMethod::kDualCellSwitching;  ///< kIso

  static Request Point(amr::IntVect p);
  static Request Plane(int axis, std::int64_t index);
  static Request Region(int level, const amr::Box& box);
  static Request Iso(double iso, vis::VisMethod method);
};

/// Result of one request; only the member matching the request kind is
/// populated (the rest stay default). `stats` is always filled.
struct Response {
  double value = 0.0;                          ///< kPoint
  Array3<double> slice;                        ///< kPlane
  std::vector<compress::RegionPatch> patches;  ///< kRegion
  vis::TriMesh mesh;                           ///< kIso
  QueryStats stats;
};

class QueryService {
 public:
  /// Binds the service to `compressed`/`comp`; the caller keeps both
  /// alive for the service lifetime. Allocates the shared cache and its
  /// per-(level, patch) container ids up front.
  QueryService(const compress::AmrCompressed& compressed,
               const compress::Compressor& comp,
               const ServiceOptions& options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // ---- synchronous API (thread-safe; callers may overlap freely) ----

  /// Value at finest-space cell `p` (amr::sample_point_compressed).
  double point(amr::IntVect p, QueryStats* stats = nullptr);

  /// Axis-aligned finest-resolution slice (amr::sample_plane_compressed).
  Array3<double> plane(int axis, std::int64_t index,
                       QueryStats* stats = nullptr);

  /// Region decode of one level (compress::decompress_level_region).
  std::vector<compress::RegionPatch> region(int level, const amr::Box& box,
                                            QueryStats* stats = nullptr);

  /// Streamed isosurface (vis::amr_isosurface_streamed) through the
  /// shared cache; the mesh is bit-identical to the uncached pipelines.
  vis::TriMesh isosurface(double iso, vis::VisMethod method,
                          QueryStats* stats = nullptr);

  // ---- batched / async front end ----

  /// Serve one request (dispatch on kind).
  Response execute(const Request& req);

  /// Fire-and-forget onto the pool; the future carries the response or
  /// the query's exception. queue_ms measures submit -> task start.
  std::future<Response> submit(Request req);

  /// Serve a batch: with merge_regions, the union of all region
  /// requests' decode units is deduplicated and prefetched across the
  /// pool first, so overlapping ROIs decode shared tiles once. Responses
  /// are returned in request order.
  std::vector<Response> run_batch(const std::vector<Request>& reqs);

  // ---- introspection ----

  /// Lifetime totals across all requests (atomically maintained).
  struct Counters {
    std::uint64_t requests = 0;
    std::int64_t tiles_decoded = 0;  ///< incl. batch prefetch decodes
    std::int64_t cache_hits = 0;
  };
  [[nodiscard]] Counters counters() const;

  /// The shared store (budget, eviction counters) and its binding.
  [[nodiscard]] compress::TileCache& cache() { return store_; }
  [[nodiscard]] const compress::AmrTileCache& binding() const {
    return cache_;
  }

 private:
  struct Timed;  // steady_clock plumbing lives in the .cpp

  Response execute_impl(const Request& req, double queue_ms);
  /// Merge step of run_batch: decode-unit dedup + pool prefetch.
  void prefetch_regions(const std::vector<Request>& reqs);
  void account(const QueryStats& s);

  const compress::AmrCompressed* compressed_;
  const compress::Compressor* comp_;
  ServiceOptions options_;
  compress::TileCache store_;
  compress::AmrTileCache cache_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::int64_t> tiles_decoded_{0};
  std::atomic<std::int64_t> cache_hits_{0};
};

}  // namespace amrvis::service
