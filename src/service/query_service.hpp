#pragma once
// Concurrent query service over a compressed AMR hierarchy — the front
// end that turns the region-decode / sampling / streamed-iso machinery
// into something N interactive clients can hit at once:
//
//  - One byte-bounded decoded-tile cache (compress/tile_cache.hpp) bound
//    to the hierarchy is shared by every query, so concurrent or repeated
//    requests touching the same tiles decode them once (per-entry
//    once-flag) and the hot working set stays resident within a fixed
//    byte budget.
//  - Every request executes under ScopedParallelBackend(kPool): all
//    internal parallel loops share the persistent work-stealing pool
//    (util/thread_pool.hpp) instead of forking per-caller OpenMP teams,
//    so N clients cannot oversubscribe the machine N-fold.
//  - The batched front end (run_batch) merges overlapping region-decode
//    requests: the union of their (level, patch, tile) decode units is
//    deduplicated and prefetched across the pool, then each request is
//    served — overlapping tiles cost one decode for the whole batch
//    instead of one per request.
//
// Fault tolerance (util/error.hpp taxonomy end to end):
//
//  - Every request carries an optional deadline and cancellation flag,
//    checked cooperatively at patch/tile granularity; firing yields a
//    typed kTimeout / kCancelled outcome instead of a wedged client.
//  - Transient failures (injected faults, util/fault.hpp) are retried
//    with bounded exponential backoff before they surface.
//  - A per-container circuit breaker tracks distinct failing tile slots;
//    at `quarantine_failures` distinct slots the container is quarantined
//    (its known-bad slots also refused at the TileCache layer) and
//    subsequent point/plane/region requests degrade gracefully: the
//    quarantined patches are skipped (coarser levels fill in for
//    sampling) and the response reports how many patches it lost.
//    unquarantine_all() lifts every breaker once the storage is fixed.
//  - An iso request that fails only because the stats table is invalid
//    (Error{kStatsInvalid}) falls back to cull-disabled streaming under
//    a lenient-stats parse — correct mesh, no culling speedup.
//
// Thread safety: all public methods may be called concurrently from any
// number of client threads. Per-request instrumentation (QueryStats) is
// stack-owned by each call; service-wide counters are atomics; the
// breaker state is mutex-guarded with a relaxed-atomic fast path.
//
// Results are bit-identical to calling the underlying primitives
// directly without any cache — the cache moves decode work, never
// values. Once faults stop and quarantines are lifted, responses are
// again bit-identical to the fault-free ones (the chaos suite pins
// this).

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "amr/sampling.hpp"
#include "compress/amr_compress.hpp"
#include "util/error.hpp"
#include "vis/amr_iso.hpp"

namespace amrvis::service {

/// Service configuration, fixed at construction.
struct ServiceOptions {
  /// Byte budget of the shared decoded-tile cache. Entries above the
  /// budget bypass the cache (decode still succeeds); the bound is never
  /// exceeded, see TileCache.
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Batch front end: deduplicate + prefetch the decode units of
  /// overlapping region requests before serving them.
  bool merge_regions = true;
  /// Base options for isosurface requests (the cache binding is filled
  /// in by the service; a caller-provided `cache` here is ignored).
  vis::StreamedIsoOptions iso{};
  /// Extra attempts for TRANSIENT failures (error_is_transient) before a
  /// request gives up; hard corruption is never retried here (TileStream
  /// owns its one in-stream retry).
  int max_retries = 2;
  /// Base backoff before the first retry; doubles per retry. 0 disables
  /// the sleep (retries stay bounded either way).
  double retry_backoff_ms = 0.5;
  /// Circuit breaker: distinct failing tile slots within one container
  /// before that container is quarantined. <= 0 disables the breaker.
  int quarantine_failures = 3;
};

/// Per-request instrumentation, stack-owned by each call — never shared
/// between threads (the concurrency story for stats under the service).
struct QueryStats {
  std::int64_t tiles_decoded = 0;  ///< decodes this request ran itself
  std::int64_t cache_hits = 0;     ///< tiles served by the shared cache
  double queue_ms = 0.0;    ///< submit -> execution start; 0.0 when the
                            ///< request never queued (synchronous call)
  double service_ms = 0.0;  ///< execution start -> finish
  bool queued = false;      ///< true iff the request went through a queue
                            ///< (submit/run_batch) and queue_ms measures a
                            ///< real wait rather than a synchronous 0
};

/// One query of the batched/async front end.
struct Request {
  enum class Kind { kPoint, kPlane, kRegion, kIso };
  Kind kind = Kind::kPoint;

  amr::IntVect point{};                  ///< kPoint: finest-space cell
  int axis = 0;                          ///< kPlane: 0, 1 or 2
  std::int64_t plane_index = 0;          ///< kPlane: finest-space index
  int level = 0;                         ///< kRegion: hierarchy level
  amr::Box region{};                     ///< kRegion: level-space box
  double iso = 0.0;                      ///< kIso: isovalue
  vis::VisMethod method = vis::VisMethod::kDualCellSwitching;  ///< kIso

  /// Wall-clock budget measured from execution start; 0 = none. Firing
  /// yields a kTimeout outcome.
  double deadline_ms = 0.0;
  /// Optional external cancellation flag (store(true) from any thread);
  /// firing yields a kCancelled outcome.
  std::shared_ptr<std::atomic<bool>> cancel;

  static Request Point(amr::IntVect p);
  static Request Plane(int axis, std::int64_t index);
  static Request Region(int level, const amr::Box& box);
  static Request Iso(double iso, vis::VisMethod method);
  /// Fluent deadline attach: Request::Point(p).with_deadline(50.0).
  Request with_deadline(double ms) && {
    deadline_ms = ms;
    return std::move(*this);
  }
};

/// Typed result classification of one request. ok() responses carry the
/// payload; a degraded() response is still usable but lost quarantined
/// patches (or culling); a failed response carries the Error's code,
/// message and (container, tile) context instead of throwing — so one
/// bad request never aborts a batch.
struct Outcome {
  ErrorCode code = ErrorCode::kOk;
  std::string message;        ///< unformatted Error message on failure
  ErrorContext context{};     ///< (container, tile, offset) when known
  std::int64_t quarantined_patches = 0;  ///< patches skipped, degraded
  int retries = 0;            ///< transient retries this request used
  bool stats_fallback = false;  ///< iso served via lenient cull-off path

  [[nodiscard]] bool ok() const { return code == ErrorCode::kOk; }
  [[nodiscard]] bool degraded() const {
    return ok() && (quarantined_patches > 0 || stats_fallback);
  }
  /// Rebuild the Error a throwing API would have surfaced.
  [[nodiscard]] Error to_error() const {
    return Error(code, message, context);
  }
};

/// Result of one request; only the member matching the request kind is
/// populated (the rest stay default). `stats` and `outcome` are always
/// filled.
struct Response {
  double value = 0.0;                          ///< kPoint
  Array3<double> slice;                        ///< kPlane
  std::vector<compress::RegionPatch> patches;  ///< kRegion
  vis::TriMesh mesh;                           ///< kIso
  QueryStats stats;
  Outcome outcome;
};

class QueryService {
 public:
  /// Binds the service to `compressed`/`comp`; the caller keeps both
  /// alive for the service lifetime. Allocates the shared cache and its
  /// per-(level, patch) container ids up front.
  QueryService(const compress::AmrCompressed& compressed,
               const compress::Compressor& comp,
               const ServiceOptions& options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // ---- synchronous API (thread-safe; callers may overlap freely) ----
  // These throw the typed Error on failure (after retries/degradation);
  // the Request/Response front end reports the same Error as an Outcome
  // instead.

  /// Value at finest-space cell `p` (amr::sample_point_compressed).
  double point(amr::IntVect p, QueryStats* stats = nullptr);

  /// Axis-aligned finest-resolution slice (amr::sample_plane_compressed).
  Array3<double> plane(int axis, std::int64_t index,
                       QueryStats* stats = nullptr);

  /// Region decode of one level (compress::decompress_level_region).
  std::vector<compress::RegionPatch> region(int level, const amr::Box& box,
                                            QueryStats* stats = nullptr);

  /// Streamed isosurface (vis::amr_isosurface_streamed) through the
  /// shared cache; the mesh is bit-identical to the uncached pipelines.
  vis::TriMesh isosurface(double iso, vis::VisMethod method,
                          QueryStats* stats = nullptr);

  // ---- batched / async front end ----

  /// Serve one request (dispatch on kind). Throws the typed Error on a
  /// failed outcome; degraded successes return normally (inspect
  /// execute_full().outcome to observe degradation).
  Response execute(const Request& req);

  /// Serve one request and NEVER throw for request-scoped failures: the
  /// outcome carries the typed error instead.
  Response execute_full(const Request& req);

  /// Fire-and-forget onto the pool; the future carries the response or
  /// the query's typed exception. queue_ms measures submit -> task start.
  std::future<Response> submit(Request req);

  /// Serve a batch: with merge_regions, the union of all region
  /// requests' decode units is deduplicated and prefetched across the
  /// pool first, so overlapping ROIs decode shared tiles once. Responses
  /// are returned in request order; a failed request yields a response
  /// with a failed outcome — it never aborts the rest of the batch.
  std::vector<Response> run_batch(const std::vector<Request>& reqs);

  // ---- fault management ----

  /// Lift every container quarantine and reset all breaker/failure
  /// state (service breaker + TileCache slot quarantines + failure
  /// counts). Call after the underlying storage fault is fixed;
  /// subsequent responses are bit-identical to fault-free ones.
  void unquarantine_all();

  /// Containers currently quarantined by the circuit breaker.
  [[nodiscard]] std::size_t quarantined_containers() const;

  // ---- introspection ----

  /// Lifetime totals across all requests (atomically maintained).
  struct Counters {
    std::uint64_t requests = 0;
    std::int64_t tiles_decoded = 0;  ///< incl. batch prefetch decodes
    std::int64_t cache_hits = 0;
    std::uint64_t failures = 0;   ///< requests with a failed outcome
    std::uint64_t retries = 0;    ///< transient retries across requests
    std::uint64_t degraded = 0;   ///< ok-but-degraded responses
  };
  [[nodiscard]] Counters counters() const;

  /// The shared store (budget, eviction counters) and its binding.
  [[nodiscard]] compress::TileCache& cache() { return store_; }
  [[nodiscard]] const compress::AmrTileCache& binding() const {
    return cache_;
  }

 private:
  struct Timed;  // steady_clock plumbing lives in the .cpp

  Response execute_impl(const Request& req, double queue_ms, bool queued);
  /// One attempt of a request's primitive; fills payload + decode stats.
  void run_once(const Request& req, Response& resp,
                const util::CancelToken* cancel, bool lenient_iso,
                std::int64_t* skipped);
  /// Circuit-breaker bookkeeping for a request-fatal decode failure.
  void record_failure(const Error& e);
  [[nodiscard]] bool is_patch_quarantined(int level, std::size_t patch);
  /// Merge step of run_batch: decode-unit dedup + pool prefetch.
  void prefetch_regions(const std::vector<Request>& reqs);
  void account(const Response& resp);

  const compress::AmrCompressed* compressed_;
  const compress::Compressor* comp_;
  ServiceOptions options_;
  compress::TileCache store_;
  compress::AmrTileCache cache_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::int64_t> tiles_decoded_{0};
  std::atomic<std::int64_t> cache_hits_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> degraded_{0};

  /// Breaker state. has_quarantined_ is the lock-free fast path: the
  /// per-patch skip predicate only takes the mutex once a breaker has
  /// actually tripped, so the healthy hot path costs one relaxed load.
  mutable std::mutex breaker_mu_;
  std::unordered_map<std::uint64_t, std::unordered_set<std::int64_t>>
      failed_slots_;                              ///< container -> slots
  std::unordered_set<std::uint64_t> quarantined_;  ///< containers
  std::atomic<bool> has_quarantined_{false};
};

}  // namespace amrvis::service
