#include "service/query_service.hpp"

#include <chrono>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

namespace amrvis::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One deduplicated decode unit of a batch's region requests: a chunked
/// container slot, or a whole plain patch blob (slot == kWholeBlob).
struct DecodeUnit {
  int level = 0;
  std::size_t patch = 0;
  std::int64_t slot = 0;

  friend bool operator==(const DecodeUnit&, const DecodeUnit&) = default;
};

struct DecodeUnitHash {
  std::size_t operator()(const DecodeUnit& u) const {
    // splitmix-style fold; unit keys are tiny, any decent mix works.
    std::uint64_t h = static_cast<std::uint64_t>(u.level);
    h = (h ^ (static_cast<std::uint64_t>(u.patch) +
              0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
    h = (h ^ (static_cast<std::uint64_t>(u.slot) +
              0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
    return static_cast<std::size_t>(h * 0xbf58476d1ce4e5b9ULL);
  }
};

}  // namespace

Request Request::Point(amr::IntVect p) {
  Request r;
  r.kind = Kind::kPoint;
  r.point = p;
  return r;
}

Request Request::Plane(int axis, std::int64_t index) {
  Request r;
  r.kind = Kind::kPlane;
  r.axis = axis;
  r.plane_index = index;
  return r;
}

Request Request::Region(int level, const amr::Box& box) {
  Request r;
  r.kind = Kind::kRegion;
  r.level = level;
  r.region = box;
  return r;
}

Request Request::Iso(double iso, vis::VisMethod method) {
  Request r;
  r.kind = Kind::kIso;
  r.iso = iso;
  r.method = method;
  return r;
}

QueryService::QueryService(const compress::AmrCompressed& compressed,
                           const compress::Compressor& comp,
                           const ServiceOptions& options)
    : compressed_(&compressed),
      comp_(&comp),
      options_(options),
      store_(options.cache_bytes),
      cache_(store_, compressed) {
  AMRVIS_REQUIRE_MSG(comp.name() == compressed.compressor_name,
                     "query_service: codec mismatch");
}

void QueryService::account(const QueryStats& s) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  tiles_decoded_.fetch_add(s.tiles_decoded, std::memory_order_relaxed);
  cache_hits_.fetch_add(s.cache_hits, std::memory_order_relaxed);
}

QueryService::Counters QueryService::counters() const {
  return {requests_.load(std::memory_order_relaxed),
          tiles_decoded_.load(std::memory_order_relaxed),
          cache_hits_.load(std::memory_order_relaxed)};
}

double QueryService::point(amr::IntVect p, QueryStats* stats) {
  const Clock::time_point t0 = Clock::now();
  ScopedParallelBackend scope(ParallelBackend::kPool);
  compress::RegionDecodeStats rs;
  const double v =
      amr::sample_point_compressed(*compressed_, *comp_, p, &rs, &cache_);
  QueryStats qs;
  qs.tiles_decoded = rs.tiles_decoded;
  qs.cache_hits = rs.cache_hits;
  qs.service_ms = ms_since(t0);
  account(qs);
  if (stats != nullptr) *stats = qs;
  return v;
}

Array3<double> QueryService::plane(int axis, std::int64_t index,
                                   QueryStats* stats) {
  const Clock::time_point t0 = Clock::now();
  ScopedParallelBackend scope(ParallelBackend::kPool);
  compress::RegionDecodeStats rs;
  Array3<double> out = amr::sample_plane_compressed(*compressed_, *comp_,
                                                    axis, index, &rs,
                                                    &cache_);
  QueryStats qs;
  qs.tiles_decoded = rs.tiles_decoded;
  qs.cache_hits = rs.cache_hits;
  qs.service_ms = ms_since(t0);
  account(qs);
  if (stats != nullptr) *stats = qs;
  return out;
}

std::vector<compress::RegionPatch> QueryService::region(int level,
                                                        const amr::Box& box,
                                                        QueryStats* stats) {
  const Clock::time_point t0 = Clock::now();
  ScopedParallelBackend scope(ParallelBackend::kPool);
  compress::RegionDecodeStats rs;
  auto out = compress::decompress_level_region(*compressed_, *comp_, level,
                                               box, &rs, &cache_);
  QueryStats qs;
  qs.tiles_decoded = rs.tiles_decoded;
  qs.cache_hits = rs.cache_hits;
  qs.service_ms = ms_since(t0);
  account(qs);
  if (stats != nullptr) *stats = qs;
  return out;
}

vis::TriMesh QueryService::isosurface(double iso, vis::VisMethod method,
                                      QueryStats* stats) {
  const Clock::time_point t0 = Clock::now();
  ScopedParallelBackend scope(ParallelBackend::kPool);
  vis::StreamedIsoOptions opts = options_.iso;
  opts.cache = &cache_;
  vis::StreamedIsoStats is;
  vis::TriMesh mesh = vis::amr_isosurface_streamed(*compressed_, *comp_,
                                                   iso, method, opts, &is);
  QueryStats qs;
  qs.tiles_decoded = is.tiles_decoded;
  qs.cache_hits = is.cache_hits;
  qs.service_ms = ms_since(t0);
  account(qs);
  if (stats != nullptr) *stats = qs;
  return mesh;
}

Response QueryService::execute_impl(const Request& req, double queue_ms) {
  Response resp;
  switch (req.kind) {
    case Request::Kind::kPoint:
      resp.value = point(req.point, &resp.stats);
      break;
    case Request::Kind::kPlane:
      resp.slice = plane(req.axis, req.plane_index, &resp.stats);
      break;
    case Request::Kind::kRegion:
      resp.patches = region(req.level, req.region, &resp.stats);
      break;
    case Request::Kind::kIso:
      resp.mesh = isosurface(req.iso, req.method, &resp.stats);
      break;
  }
  resp.stats.queue_ms = queue_ms;
  return resp;
}

Response QueryService::execute(const Request& req) {
  return execute_impl(req, 0.0);
}

std::future<Response> QueryService::submit(Request req) {
  const Clock::time_point enq = Clock::now();
  auto prom = std::make_shared<std::promise<Response>>();
  std::future<Response> fut = prom->get_future();
  ThreadPool::global().post([this, req = std::move(req), prom, enq] {
    try {
      prom->set_value(execute_impl(req, ms_since(enq)));
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
  });
  return fut;
}

void QueryService::prefetch_regions(const std::vector<Request>& reqs) {
  // Enumerate the decode units every region request touches — the same
  // (patch, tile-slot) arithmetic ChunkedCompressor::decompress_region
  // walks — and dedupe them across the batch. The cache key of a unit
  // here is identical to the key the serving path will look up, so a
  // prefetched tile is a guaranteed hit.
  const auto* chunked =
      dynamic_cast<const compress::ChunkedCompressor*>(comp_);
  std::unordered_set<DecodeUnit, DecodeUnitHash> seen;
  std::vector<DecodeUnit> units;
  // Parsed headers for the chunked patches touched (parse once, reuse in
  // decode lambdas; the spans alias blobs owned by compressed_).
  struct PatchPlan {
    std::optional<compress::detail::ParsedContainer> pc;
    std::optional<compress::ChunkedCompressor> wrap;  // non-owning
    const compress::ChunkedCompressor* codec = nullptr;
  };
  std::vector<std::vector<std::optional<PatchPlan>>> plans(
      compressed_->levels.size());
  for (std::size_t l = 0; l < plans.size(); ++l)
    plans[l].resize(compressed_->levels[l].patches.size());

  for (const Request& req : reqs) {
    if (req.kind != Request::Kind::kRegion) continue;
    const int level = req.level;
    AMRVIS_REQUIRE_MSG(
        level >= 0 &&
            static_cast<std::size_t>(level) < compressed_->levels.size(),
        "query_service: region level out of range");
    const auto& boxes = compressed_->boxes[static_cast<std::size_t>(level)];
    const auto& patches =
        compressed_->levels[static_cast<std::size_t>(level)].patches;
    for (std::size_t p = 0; p < boxes.size(); ++p) {
      const auto overlap = boxes[p].intersect(req.region);
      if (!overlap) continue;
      const Bytes& blob = patches[p].blob;
      const bool tiled =
          chunked != nullptr ||
          compress::ChunkedCompressor::is_chunked_blob(blob);
      if (!tiled) {
        DecodeUnit u{level, p, compress::TileCache::kWholeBlob};
        if (seen.insert(u).second) units.push_back(u);
        continue;
      }
      auto& plan = plans[static_cast<std::size_t>(level)][p];
      if (!plan) {
        plan.emplace();
        plan->codec = chunked;
        if (plan->codec == nullptr)
          plan->codec = &plan->wrap.emplace(*comp_);
        plan->pc = compress::detail::parse_container(
            blob, plan->codec->inner().name());
      }
      const auto& pc = *plan->pc;
      // Patch-local region box -> the tile slots it intersects.
      const amr::Box local{overlap->lo() - boxes[p].lo(),
                           overlap->hi() - boxes[p].lo()};
      const std::int64_t tx0 = local.lo().x / pc.tile.nx;
      const std::int64_t ty0 = local.lo().y / pc.tile.ny;
      const std::int64_t tz0 = local.lo().z / pc.tile.nz;
      const std::int64_t tx1 = local.hi().x / pc.tile.nx;
      const std::int64_t ty1 = local.hi().y / pc.tile.ny;
      const std::int64_t tz1 = local.hi().z / pc.tile.nz;
      for (std::int64_t tz = tz0; tz <= tz1; ++tz)
        for (std::int64_t ty = ty0; ty <= ty1; ++ty)
          for (std::int64_t tx = tx0; tx <= tx1; ++tx) {
            const std::int64_t slot =
                (tz * pc.grid.tny + ty) * pc.grid.tnx + tx;
            DecodeUnit u{level, p, slot};
            if (seen.insert(u).second) units.push_back(u);
          }
    }
  }
  if (units.empty()) return;

  // One pool pass over the deduplicated units; the per-entry once-flag
  // makes this safe even if a concurrent client races the same tiles.
  std::atomic<std::int64_t> decoded{0};
  ThreadPool::global().run(
      static_cast<std::int64_t>(units.size()), [&](std::int64_t i) {
        const DecodeUnit& u = units[static_cast<std::size_t>(i)];
        const compress::TileCacheRef cref = cache_.ref(u.level, u.patch);
        const Bytes& blob = compressed_->levels[static_cast<std::size_t>(
            u.level)].patches[u.patch].blob;
        bool was_hit = false;
        if (u.slot == compress::TileCache::kWholeBlob) {
          cref.cache->get_or_decode(
              cref.container, u.slot,
              [&] { return comp_->decompress(blob); }, &was_hit);
        } else {
          const auto& plan =
              *plans[static_cast<std::size_t>(u.level)][u.patch];
          cref.cache->get_or_decode(
              cref.container, u.slot,
              [&] {
                return plan.codec->inner().decompress(
                    plan.pc->tiles[static_cast<std::size_t>(u.slot)]);
              },
              &was_hit);
        }
        if (!was_hit) decoded.fetch_add(1, std::memory_order_relaxed);
      });
  tiles_decoded_.fetch_add(decoded.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
}

std::vector<Response> QueryService::run_batch(
    const std::vector<Request>& reqs) {
  const Clock::time_point enq = Clock::now();
  if (options_.merge_regions) prefetch_regions(reqs);
  std::vector<Response> out;
  out.reserve(reqs.size());
  for (const Request& req : reqs)
    out.push_back(execute_impl(req, ms_since(enq)));
  return out;
}

}  // namespace amrvis::service
