#include "service/query_service.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>

#include "compress/lzss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

namespace amrvis::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One deduplicated decode unit of a batch's region requests: a chunked
/// container slot, or a whole plain patch blob (slot == kWholeBlob).
struct DecodeUnit {
  int level = 0;
  std::size_t patch = 0;
  std::int64_t slot = 0;

  friend bool operator==(const DecodeUnit&, const DecodeUnit&) = default;
};

struct DecodeUnitHash {
  std::size_t operator()(const DecodeUnit& u) const {
    // splitmix-style fold; unit keys are tiny, any decent mix works.
    std::uint64_t h = static_cast<std::uint64_t>(u.level);
    h = (h ^ (static_cast<std::uint64_t>(u.patch) +
              0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
    h = (h ^ (static_cast<std::uint64_t>(u.slot) +
              0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
    return static_cast<std::size_t>(h * 0xbf58476d1ce4e5b9ULL);
  }
};

/// Failure codes the circuit breaker counts: data-level decode problems
/// attributable to one (container, tile). Deadlines, cancellations and
/// quarantine refusals are request-scoped, not evidence of bad storage.
bool counts_toward_breaker(ErrorCode code) {
  return code == ErrorCode::kDecodeFailure ||
         code == ErrorCode::kCorruptPayload ||
         code == ErrorCode::kCorruptHeader ||
         code == ErrorCode::kStatsInvalid ||
         code == ErrorCode::kFaultInjected;
}

}  // namespace

Request Request::Point(amr::IntVect p) {
  Request r;
  r.kind = Kind::kPoint;
  r.point = p;
  return r;
}

Request Request::Plane(int axis, std::int64_t index) {
  Request r;
  r.kind = Kind::kPlane;
  r.axis = axis;
  r.plane_index = index;
  return r;
}

Request Request::Region(int level, const amr::Box& box) {
  Request r;
  r.kind = Kind::kRegion;
  r.level = level;
  r.region = box;
  return r;
}

Request Request::Iso(double iso, vis::VisMethod method) {
  Request r;
  r.kind = Kind::kIso;
  r.iso = iso;
  r.method = method;
  return r;
}

QueryService::QueryService(const compress::AmrCompressed& compressed,
                           const compress::Compressor& comp,
                           const ServiceOptions& options)
    : compressed_(&compressed),
      comp_(&comp),
      options_(options),
      store_(options.cache_bytes),
      cache_(store_, compressed) {
  AMRVIS_REQUIRE_MSG(
      compress::codec_names_compatible(comp.name(),
                                       compressed.compressor_name),
                     "query_service: codec mismatch");
}

void QueryService::account(const Response& resp) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  tiles_decoded_.fetch_add(resp.stats.tiles_decoded,
                           std::memory_order_relaxed);
  cache_hits_.fetch_add(resp.stats.cache_hits, std::memory_order_relaxed);
  if (!resp.outcome.ok())
    failures_.fetch_add(1, std::memory_order_relaxed);
  else if (resp.outcome.degraded())
    degraded_.fetch_add(1, std::memory_order_relaxed);
  retries_.fetch_add(static_cast<std::uint64_t>(resp.outcome.retries),
                     std::memory_order_relaxed);
}

QueryService::Counters QueryService::counters() const {
  return {requests_.load(std::memory_order_relaxed),
          tiles_decoded_.load(std::memory_order_relaxed),
          cache_hits_.load(std::memory_order_relaxed),
          failures_.load(std::memory_order_relaxed),
          retries_.load(std::memory_order_relaxed),
          degraded_.load(std::memory_order_relaxed)};
}

bool QueryService::is_patch_quarantined(int level, std::size_t patch) {
  if (!has_quarantined_.load(std::memory_order_relaxed)) return false;
  const std::uint64_t container = cache_.ref(level, patch).container;
  std::lock_guard<std::mutex> lk(breaker_mu_);
  return quarantined_.count(container) != 0;
}

void QueryService::record_failure(const Error& e) {
  if (options_.quarantine_failures <= 0) return;
  if (!counts_toward_breaker(e.code())) return;
  const ErrorContext& c = e.context();
  if (c.container == 0 || c.tile == ErrorContext::kNoTile) return;
  std::lock_guard<std::mutex> lk(breaker_mu_);
  auto& slots = failed_slots_[c.container];
  slots.insert(c.tile);
  if (static_cast<int>(slots.size()) >= options_.quarantine_failures &&
      quarantined_.insert(c.container).second) {
    // Enforce at the cache layer too, so read paths that bypass the
    // patch-skip predicate (iso tile streams) refuse the bad slots
    // instead of re-decoding garbage.
    for (const std::int64_t slot : slots) store_.quarantine(c.container, slot);
    has_quarantined_.store(true, std::memory_order_relaxed);
  }
}

void QueryService::unquarantine_all() {
  std::lock_guard<std::mutex> lk(breaker_mu_);
  // unquarantine() also resets the cache-side failure counts, so lifting
  // the breaker fully re-arms it (the next N distinct failures trip it
  // again, not the first one).
  for (const auto& [container, slots] : failed_slots_) {
    (void)slots;
    store_.unquarantine(container);
  }
  failed_slots_.clear();
  quarantined_.clear();
  has_quarantined_.store(false, std::memory_order_relaxed);
}

std::size_t QueryService::quarantined_containers() const {
  std::lock_guard<std::mutex> lk(breaker_mu_);
  return quarantined_.size();
}

void QueryService::run_once(const Request& req, Response& resp,
                            const util::CancelToken* cancel,
                            bool lenient_iso, std::int64_t* skipped) {
  ScopedParallelBackend scope(ParallelBackend::kPool);
  compress::LevelReadOptions read;
  read.cancel = cancel;
  if (has_quarantined_.load(std::memory_order_relaxed))
    read.skip_patch = [this, skipped](int level, std::size_t patch) {
      if (!is_patch_quarantined(level, patch)) return false;
      *skipped += 1;  // serving thread only; the patch walk is serial
      return true;
    };
  compress::RegionDecodeStats rs;
  switch (req.kind) {
    case Request::Kind::kPoint:
      resp.value = amr::sample_point_compressed(*compressed_, *comp_,
                                                req.point, &rs, &cache_,
                                                read);
      break;
    case Request::Kind::kPlane:
      resp.slice = amr::sample_plane_compressed(*compressed_, *comp_,
                                                req.axis, req.plane_index,
                                                &rs, &cache_, read);
      break;
    case Request::Kind::kRegion:
      resp.patches = compress::decompress_level_region(
          *compressed_, *comp_, req.level, req.region, &rs, &cache_, read);
      break;
    case Request::Kind::kIso: {
      vis::StreamedIsoOptions opts = options_.iso;
      opts.cache = &cache_;
      opts.cancel = cancel;
      // Degraded iso: a corrupt stats table only costs the culling
      // speedup — parse leniently (stats dropped, conservative) and
      // stream every slab. The mesh is bit-identical to the culled one.
      std::optional<compress::detail::ScopedLenientStats> lenient;
      if (lenient_iso) {
        opts.value_cull = false;
        lenient.emplace();
      }
      vis::StreamedIsoStats is;
      resp.mesh = vis::amr_isosurface_streamed(*compressed_, *comp_,
                                               req.iso, req.method, opts,
                                               &is);
      rs.tiles_decoded = is.tiles_decoded;
      rs.cache_hits = is.cache_hits;
      break;
    }
  }
  // Accumulate across attempts: retried decodes are real work.
  resp.stats.tiles_decoded += rs.tiles_decoded;
  resp.stats.cache_hits += rs.cache_hits;
}

namespace {

const char* kind_span_name(Request::Kind k) {
  switch (k) {
    case Request::Kind::kPoint:
      return "service.point";
    case Request::Kind::kPlane:
      return "service.plane";
    case Request::Kind::kRegion:
      return "service.region";
    case Request::Kind::kIso:
      return "service.iso";
  }
  return "service.unknown";
}

obs::Histogram& kind_latency_histogram(Request::Kind k) {
  switch (k) {
    case Request::Kind::kPoint: {
      static auto& h = obs::histogram("service.service_ms.point",
                                      obs::latency_ms_buckets());
      return h;
    }
    case Request::Kind::kPlane: {
      static auto& h = obs::histogram("service.service_ms.plane",
                                      obs::latency_ms_buckets());
      return h;
    }
    case Request::Kind::kRegion: {
      static auto& h = obs::histogram("service.service_ms.region",
                                      obs::latency_ms_buckets());
      return h;
    }
    case Request::Kind::kIso:
      break;
  }
  static auto& h = obs::histogram("service.service_ms.iso",
                                  obs::latency_ms_buckets());
  return h;
}

}  // namespace

Response QueryService::execute_impl(const Request& req, double queue_ms,
                                    bool queued) {
  const Clock::time_point t0 = Clock::now();
  // The queue phase (submit/enqueue -> execution start) already happened,
  // on no particular thread; emit it as an ASYNC span (backdated, exempt
  // from scope nesting) so a trace shows wait vs work per request.
  if (queued && obs::trace_armed()) {
    const std::int64_t now_us = obs::trace_clock_us();
    const auto wait_us = static_cast<std::int64_t>(queue_ms * 1000.0);
    obs::trace_emit_async_span("service.queue", now_us - wait_us, wait_us);
  }
  obs::SpanScope span(kind_span_name(req.kind),
                      {"queued", queued ? 1 : 0});
  Response resp;
  resp.stats.queue_ms = queue_ms;
  resp.stats.queued = queued;

  std::optional<util::CancelToken> token;
  if (req.deadline_ms > 0.0 || req.cancel) {
    std::optional<Clock::time_point> deadline;
    if (req.deadline_ms > 0.0)
      deadline = t0 + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              req.deadline_ms));
    token.emplace(req.cancel, deadline);
  }
  const util::CancelToken* cancel = token ? &*token : nullptr;

  int retries = 0;
  bool lenient_iso = false;
  std::int64_t skipped = 0;
  for (;;) {
    skipped = 0;
    try {
      run_once(req, resp, cancel, lenient_iso, &skipped);
      resp.outcome.code = ErrorCode::kOk;
      resp.outcome.message.clear();
      resp.outcome.context = {};
      break;
    } catch (const Error& e) {
      const bool fired =
          cancel != nullptr && (cancel->cancelled() || cancel->expired());
      if (error_is_transient(e.code()) && !fired &&
          retries < options_.max_retries) {
        ++retries;
        if (options_.retry_backoff_ms > 0.0)
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(
                  options_.retry_backoff_ms *
                  static_cast<double>(1 << (retries - 1))));
        continue;
      }
      if (req.kind == Request::Kind::kIso &&
          e.code() == ErrorCode::kStatsInvalid && !lenient_iso && !fired) {
        lenient_iso = true;
        continue;
      }
      record_failure(e);
      resp.outcome.code = e.code();
      // A point every covering level skipped is a quarantine casualty,
      // not a coverage gap — report it as such.
      if (e.code() == ErrorCode::kUnavailable && skipped > 0)
        resp.outcome.code = ErrorCode::kQuarantined;
      resp.outcome.message = e.message();
      resp.outcome.context = e.context();
      break;
    } catch (const std::exception& e) {
      resp.outcome.code = ErrorCode::kGeneric;
      resp.outcome.message = e.what();
      resp.outcome.context = {};
      break;
    }
  }
  resp.outcome.retries = retries;
  resp.outcome.quarantined_patches = skipped;
  resp.outcome.stats_fallback = lenient_iso && resp.outcome.ok();
  resp.stats.service_ms = ms_since(t0);
  account(resp);

  // Registry mirrors: request/latency metrics any snapshot can read
  // without a handle to this service instance.
  static auto& c_requests = obs::counter("service.requests");
  static auto& c_retries = obs::counter("service.retries");
  static auto& c_failures = obs::counter("service.failures");
  static auto& c_degraded = obs::counter("service.degraded");
  static auto& c_quarantined = obs::counter("service.quarantined_patches");
  static auto& c_fallback = obs::counter("service.stats_fallback");
  static auto& h_service =
      obs::histogram("service.service_ms", obs::latency_ms_buckets());
  static auto& h_queue =
      obs::histogram("service.queue_ms", obs::latency_ms_buckets());
  c_requests.add();
  if (retries > 0) c_retries.add(static_cast<std::uint64_t>(retries));
  if (!resp.outcome.ok()) c_failures.add();
  if (resp.outcome.degraded()) c_degraded.add();
  if (skipped > 0) c_quarantined.add(static_cast<std::uint64_t>(skipped));
  if (resp.outcome.stats_fallback) c_fallback.add();
  h_service.observe(resp.stats.service_ms);
  kind_latency_histogram(req.kind).observe(resp.stats.service_ms);
  // Observed for every request — synchronous calls contribute an honest
  // 0 ms wait instead of silently missing from the queue histogram.
  h_queue.observe(resp.stats.queue_ms);
  return resp;
}

double QueryService::point(amr::IntVect p, QueryStats* stats) {
  Response r = execute_impl(Request::Point(p), 0.0, false);
  if (stats != nullptr) *stats = r.stats;
  if (!r.outcome.ok()) throw r.outcome.to_error();
  return r.value;
}

Array3<double> QueryService::plane(int axis, std::int64_t index,
                                   QueryStats* stats) {
  Response r = execute_impl(Request::Plane(axis, index), 0.0, false);
  if (stats != nullptr) *stats = r.stats;
  if (!r.outcome.ok()) throw r.outcome.to_error();
  return std::move(r.slice);
}

std::vector<compress::RegionPatch> QueryService::region(int level,
                                                        const amr::Box& box,
                                                        QueryStats* stats) {
  Response r = execute_impl(Request::Region(level, box), 0.0, false);
  if (stats != nullptr) *stats = r.stats;
  if (!r.outcome.ok()) throw r.outcome.to_error();
  return std::move(r.patches);
}

vis::TriMesh QueryService::isosurface(double iso, vis::VisMethod method,
                                      QueryStats* stats) {
  Response r = execute_impl(Request::Iso(iso, method), 0.0, false);
  if (stats != nullptr) *stats = r.stats;
  if (!r.outcome.ok()) throw r.outcome.to_error();
  return std::move(r.mesh);
}

Response QueryService::execute(const Request& req) {
  Response r = execute_impl(req, 0.0, false);
  if (!r.outcome.ok()) throw r.outcome.to_error();
  return r;
}

Response QueryService::execute_full(const Request& req) {
  return execute_impl(req, 0.0, false);
}

std::future<Response> QueryService::submit(Request req) {
  const Clock::time_point enq = Clock::now();
  auto prom = std::make_shared<std::promise<Response>>();
  std::future<Response> fut = prom->get_future();
  ThreadPool::global().post([this, req = std::move(req), prom, enq] {
    try {
      Response r = execute_impl(req, ms_since(enq), true);
      if (!r.outcome.ok())
        prom->set_exception(
            std::make_exception_ptr(r.outcome.to_error()));
      else
        prom->set_value(std::move(r));
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
  });
  return fut;
}

void QueryService::prefetch_regions(const std::vector<Request>& reqs) {
  OBS_SPAN("service.prefetch",
           {"requests", static_cast<std::int64_t>(reqs.size())});
  // Enumerate the decode units every region request touches — the same
  // (patch, tile-slot) arithmetic ChunkedCompressor::decompress_region
  // walks — and dedupe them across the batch. The cache key of a unit
  // here is identical to the key the serving path will look up, so a
  // prefetched tile is a guaranteed hit.
  const auto* chunked =
      dynamic_cast<const compress::ChunkedCompressor*>(comp_);
  std::unordered_set<DecodeUnit, DecodeUnitHash> seen;
  std::vector<DecodeUnit> units;
  // Parsed headers for the chunked patches touched (parse once, reuse in
  // decode lambdas; the spans alias blobs owned by compressed_).
  struct PatchPlan {
    std::optional<compress::detail::ParsedContainer> pc;
    std::optional<compress::ChunkedCompressor> wrap;  // non-owning
    const compress::ChunkedCompressor* codec = nullptr;
  };
  std::vector<std::vector<std::optional<PatchPlan>>> plans(
      compressed_->levels.size());
  for (std::size_t l = 0; l < plans.size(); ++l)
    plans[l].resize(compressed_->levels[l].patches.size());

  for (const Request& req : reqs) {
    if (req.kind != Request::Kind::kRegion) continue;
    const int level = req.level;
    AMRVIS_REQUIRE_MSG(
        level >= 0 &&
            static_cast<std::size_t>(level) < compressed_->levels.size(),
        "query_service: region level out of range");
    const auto& boxes = compressed_->boxes[static_cast<std::size_t>(level)];
    const auto& patches =
        compressed_->levels[static_cast<std::size_t>(level)].patches;
    for (std::size_t p = 0; p < boxes.size(); ++p) {
      const auto overlap = boxes[p].intersect(req.region);
      if (!overlap) continue;
      // Quarantined patches will be skipped at serve time; don't spend
      // prefetch decodes (or collect refusals) on them.
      if (is_patch_quarantined(level, p)) continue;
      const Bytes& blob = patches[p].blob;
      const bool tiled =
          chunked != nullptr ||
          compress::ChunkedCompressor::is_chunked_blob(blob);
      if (!tiled) {
        DecodeUnit u{level, p, compress::TileCache::kWholeBlob};
        if (seen.insert(u).second) units.push_back(u);
        continue;
      }
      auto& plan = plans[static_cast<std::size_t>(level)][p];
      if (!plan) {
        plan.emplace();
        plan->codec = chunked;
        if (plan->codec == nullptr)
          plan->codec = &plan->wrap.emplace(*comp_);
        plan->pc = compress::detail::parse_container(
            blob, plan->codec->inner().name());
      }
      const auto& pc = *plan->pc;
      // Patch-local region box -> the tile slots it intersects.
      const amr::Box local{overlap->lo() - boxes[p].lo(),
                           overlap->hi() - boxes[p].lo()};
      const std::int64_t tx0 = local.lo().x / pc.tile.nx;
      const std::int64_t ty0 = local.lo().y / pc.tile.ny;
      const std::int64_t tz0 = local.lo().z / pc.tile.nz;
      const std::int64_t tx1 = local.hi().x / pc.tile.nx;
      const std::int64_t ty1 = local.hi().y / pc.tile.ny;
      const std::int64_t tz1 = local.hi().z / pc.tile.nz;
      for (std::int64_t tz = tz0; tz <= tz1; ++tz)
        for (std::int64_t ty = ty0; ty <= ty1; ++ty)
          for (std::int64_t tx = tx0; tx <= tx1; ++tx) {
            const std::int64_t slot =
                (tz * pc.grid.tny + ty) * pc.grid.tnx + tx;
            DecodeUnit u{level, p, slot};
            if (seen.insert(u).second) units.push_back(u);
          }
    }
  }
  if (units.empty()) return;

  // Rank before decoding: when the batch also carries iso requests,
  // tiles whose v4 histogram sketch promises cells at one of the
  // isovalues are prefetched first, so a byte-bounded shared cache
  // warmed by a truncated or racing prefetch holds the most useful
  // tiles. Ranking is pure order — the deduplicated unit SET never
  // changes, plain whole-blob units keep their neutral 1.0 rank, and
  // containers without a sketch rank 1.0 too (stable sort preserves
  // their request order).
  std::vector<double> isos;
  for (const Request& req : reqs)
    if (req.kind == Request::Kind::kIso) isos.push_back(req.iso);
  if (!isos.empty()) {
    std::vector<double> rank(units.size(), 1.0);
    for (std::size_t i = 0; i < units.size(); ++i) {
      const DecodeUnit& u = units[i];
      if (u.slot == compress::TileCache::kWholeBlob) continue;
      const auto& plan =
          *plans[static_cast<std::size_t>(u.level)][u.patch];
      const compress::TileStatsView view(*plan.pc, compressed_->abs_eb);
      double r = 0.0;
      for (const double iso : isos)
        r = std::max(r, view.expected_in_band(u.slot, iso, iso));
      rank[i] = r;
    }
    std::vector<std::size_t> order(units.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return rank[a] > rank[b];
                     });
    std::vector<DecodeUnit> sorted;
    sorted.reserve(units.size());
    for (const std::size_t i : order)
      sorted.push_back(units[i]);
    units.swap(sorted);
  }

  // One pool pass over the deduplicated units; the per-entry once-flag
  // makes this safe even if a concurrent client races the same tiles.
  // Prefetch is best-effort: a failing unit is swallowed here (the
  // serving path retries it and owns the typed outcome), so one bad
  // tile never aborts the whole batch's warm-up.
  std::atomic<std::int64_t> decoded{0};
  ThreadPool::global().run(
      static_cast<std::int64_t>(units.size()), [&](std::int64_t i) {
        const DecodeUnit& u = units[static_cast<std::size_t>(i)];
        const compress::TileCacheRef cref = cache_.ref(u.level, u.patch);
        const Bytes& blob = compressed_->levels[static_cast<std::size_t>(
            u.level)].patches[u.patch].blob;
        bool was_hit = false;
        try {
          if (u.slot == compress::TileCache::kWholeBlob) {
            cref.cache->get_or_decode(
                cref.container, u.slot,
                [&] { return comp_->decompress(blob); }, &was_hit);
          } else {
            const auto& plan =
                *plans[static_cast<std::size_t>(u.level)][u.patch];
            cref.cache->get_or_decode(
                cref.container, u.slot,
                [&] {
                  return compress::detail::decode_tile(
                      plan.codec->inner(),
                      plan.pc->tiles[static_cast<std::size_t>(u.slot)]);
                },
                &was_hit);
          }
        } catch (const Error&) {
          return;
        }
        if (!was_hit) decoded.fetch_add(1, std::memory_order_relaxed);
      });
  tiles_decoded_.fetch_add(decoded.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
}

std::vector<Response> QueryService::run_batch(
    const std::vector<Request>& reqs) {
  OBS_SPAN("service.batch",
           {"requests", static_cast<std::int64_t>(reqs.size())});
  const Clock::time_point enq = Clock::now();
  if (options_.merge_regions) {
    // Best-effort warm-up: a corrupt header (or an injected parse fault)
    // must not abort the batch — each request re-discovers and reports
    // its own typed failure.
    try {
      prefetch_regions(reqs);
    } catch (const Error&) {
    }
  }
  std::vector<Response> out;
  out.reserve(reqs.size());
  for (const Request& req : reqs)
    out.push_back(execute_impl(req, ms_since(enq), true));
  return out;
}

}  // namespace amrvis::service
