#include "render/render.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>

#include "util/error.hpp"

namespace amrvis::render {

using vis::TriMesh;
using vis::Vec3;

OrthoCamera OrthoCamera::fit(Vec3 lo, Vec3 hi, int axis, double margin) {
  AMRVIS_REQUIRE(axis >= 0 && axis < 3);
  auto comp = [](const Vec3& v, int d) {
    return d == 0 ? v.x : (d == 1 ? v.y : v.z);
  };
  const int ua = axis == 0 ? 1 : 0;
  const int va = axis == 2 ? 1 : 2;
  OrthoCamera cam;
  cam.axis = axis;
  const double du = comp(hi, ua) - comp(lo, ua);
  const double dv = comp(hi, va) - comp(lo, va);
  cam.u0 = comp(lo, ua) - margin * du;
  cam.u1 = comp(hi, ua) + margin * du;
  cam.v0 = comp(lo, va) - margin * dv;
  cam.v1 = comp(hi, va) + margin * dv;
  return cam;
}

namespace {

struct Shaded {
  Image gray;
  std::vector<int> level;  ///< per-pixel winning triangle level (-1 = none)
};

Shaded rasterize(const TriMesh& mesh, const OrthoCamera& cam, int width,
                 int height) {
  AMRVIS_REQUIRE(width > 0 && height > 0);
  Shaded out;
  out.gray = Image(width, height);
  out.level.assign(static_cast<std::size_t>(width) * height, -1);
  std::vector<double> depth(static_cast<std::size_t>(width) * height,
                            -std::numeric_limits<double>::infinity());

  auto comp = [](const Vec3& v, int d) {
    return d == 0 ? v.x : (d == 1 ? v.y : v.z);
  };
  const int ua = cam.axis == 0 ? 1 : 0;
  const int va = cam.axis == 2 ? 1 : 2;
  const double su = width / (cam.u1 - cam.u0);
  const double sv = height / (cam.v1 - cam.v0);
  const Vec3 light = vis::normalized({0.5, 0.6, 1.0});

  for (const vis::Triangle& t : mesh.triangles) {
    const Vec3& a = mesh.vertices[t.v[0]];
    const Vec3& b = mesh.vertices[t.v[1]];
    const Vec3& c = mesh.vertices[t.v[2]];
    const Vec3 n = vis::normalized(vis::cross(b - a, c - a));
    const double shade =
        0.25 + 0.75 * std::abs(vis::dot(n, light));

    // Project to pixel coordinates.
    const double ax = (comp(a, ua) - cam.u0) * su;
    const double ay = (comp(a, va) - cam.v0) * sv;
    const double bx = (comp(b, ua) - cam.u0) * su;
    const double by = (comp(b, va) - cam.v0) * sv;
    const double cx = (comp(c, ua) - cam.u0) * su;
    const double cy = (comp(c, va) - cam.v0) * sv;
    const double az = comp(a, cam.axis);
    const double bz = comp(b, cam.axis);
    const double cz = comp(c, cam.axis);

    const int x0 = std::max(0, static_cast<int>(
                                   std::floor(std::min({ax, bx, cx}))));
    const int x1 = std::min(width - 1, static_cast<int>(std::ceil(
                                           std::max({ax, bx, cx}))));
    const int y0 = std::max(0, static_cast<int>(
                                   std::floor(std::min({ay, by, cy}))));
    const int y1 = std::min(height - 1, static_cast<int>(std::ceil(
                                            std::max({ay, by, cy}))));
    const double area = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
    if (area == 0.0) continue;
    const double inv_area = 1.0 / area;

    for (int y = y0; y <= y1; ++y)
      for (int x = x0; x <= x1; ++x) {
        const double px = x + 0.5, py = y + 0.5;
        const double w0 =
            ((bx - px) * (cy - py) - (by - py) * (cx - px)) * inv_area;
        const double w1 =
            ((cx - px) * (ay - py) - (cy - py) * (ax - px)) * inv_area;
        const double w2 = 1.0 - w0 - w1;
        if (w0 < 0 || w1 < 0 || w2 < 0) continue;
        const double z = w0 * az + w1 * bz + w2 * cz;
        const std::size_t idx =
            static_cast<std::size_t>(y) * width + x;
        if (z > depth[idx]) {
          depth[idx] = z;
          out.gray.gray[idx] = shade;
          out.level[idx] = t.level;
        }
      }
  }
  return out;
}

}  // namespace

Image render_mesh(const TriMesh& mesh, const OrthoCamera& camera, int width,
                  int height) {
  return rasterize(mesh, camera, width, height).gray;
}

void write_pgm(const Image& image, const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  AMRVIS_REQUIRE_MSG(f != nullptr, "cannot open for write: " + path);
  std::fprintf(f.get(), "P5\n%d %d\n255\n", image.width, image.height);
  for (double g : image.gray) {
    const auto b = static_cast<std::uint8_t>(
        std::clamp(g, 0.0, 1.0) * 255.0 + 0.5);
    std::fputc(b, f.get());
  }
}

void write_level_colored_ppm(const TriMesh& mesh, const OrthoCamera& camera,
                             int width, int height, const std::string& path) {
  const Shaded shaded = rasterize(mesh, camera, width, height);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  AMRVIS_REQUIRE_MSG(f != nullptr, "cannot open for write: " + path);
  std::fprintf(f.get(), "P6\n%d %d\n255\n", width, height);
  for (std::size_t i = 0; i < shaded.gray.gray.size(); ++i) {
    const double g = std::clamp(shaded.gray.gray[i], 0.0, 1.0);
    double r = g, gg = g, b = g;
    if (shaded.level[i] == 0) {
      b = std::min(1.0, g * 1.35);
      r = g * 0.7;
    } else if (shaded.level[i] > 0) {
      r = std::min(1.0, g * 1.35);
      b = g * 0.7;
    }
    std::fputc(static_cast<int>(r * 255.0 + 0.5), f.get());
    std::fputc(static_cast<int>(gg * 255.0 + 0.5), f.get());
    std::fputc(static_cast<int>(b * 255.0 + 0.5), f.get());
  }
}

}  // namespace amrvis::render
