#pragma once
// Minimal deterministic software renderer: orthographic projection along a
// chosen axis, z-buffered triangle rasterization, two-sided Lambert
// shading. Produces grayscale images for the image-domain quality metrics
// (paper Figs. 9-11 are exactly such renders) and optional level-colored
// images for inspection.

#include <cstdint>
#include <string>
#include <vector>

#include "vis/mesh.hpp"

namespace amrvis::render {

struct Image {
  int width = 0;
  int height = 0;
  std::vector<double> gray;  ///< row-major, [0,1]

  Image() = default;
  Image(int w, int h) : width(w), height(h), gray(static_cast<std::size_t>(w) * h, 0.0) {}
  double& at(int x, int y) { return gray[static_cast<std::size_t>(y) * width + x]; }
  [[nodiscard]] double at(int x, int y) const {
    return gray[static_cast<std::size_t>(y) * width + x];
  }
};

struct OrthoCamera {
  int axis = 0;       ///< world axis the camera looks along
  double u0 = 0, u1 = 1, v0 = 0, v1 = 1;  ///< world window on the other axes

  /// Frame the window on `lo`/`hi` bounds with a relative margin.
  static OrthoCamera fit(vis::Vec3 lo, vis::Vec3 hi, int axis,
                         double margin = 0.05);
};

/// Render `mesh` to a grayscale image. Background is 0; surfaces shade by
/// |n . light| in [0.25, 1]. Deterministic for a fixed mesh order.
Image render_mesh(const vis::TriMesh& mesh, const OrthoCamera& camera,
                  int width, int height);

/// Write binary PGM (8-bit grayscale).
void write_pgm(const Image& image, const std::string& path);

/// Render with per-AMR-level tinting and write a binary PPM (level 0 cool,
/// deeper levels warm; useful to eyeball crack locations).
void write_level_colored_ppm(const vis::TriMesh& mesh,
                             const OrthoCamera& camera, int width, int height,
                             const std::string& path);

}  // namespace amrvis::render
